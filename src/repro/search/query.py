"""Query-centric similarity search: a persistent, updatable serving index.

The paper focuses on the *all-pairs* problem, but its introduction frames the
general similarity-search problem ("given a query q, retrieve all objects
with s(x, q) > t"), and BayesLSH applies to that setting unchanged: the
candidate generation index is built once over the collection, and each query
is verified against its candidates with the same Bayesian pruning.

:class:`QueryIndex` packages that workflow as a serving subsystem:

* the collection lives in a **segmented store**
  (:class:`~repro.serving.segments.SegmentedCollection`): ``insert(vectors)``
  seals the batch as a new segment — prepared, hashed and indexed in
  isolation, O(batch) — instead of re-concatenating and re-preparing the
  whole corpus; candidate generation, verification and exact scoring route
  global rows to their owning segments and run the same kernels with local
  indices, bit-identically to a monolithic rebuild;
* ``query_many(matrix, ...)`` / ``top_k_many(matrix, k)`` serve a *batch* of
  queries: the whole batch is hashed in one kernel call, band probes are
  unioned array-wise, and all (query, candidate) pairs are verified together
  through the vectorised cross-store kernels — bit-identical to calling the
  singular ``query(vector, ...)`` / ``top_k(vector, k)`` per row;
* ``n_workers > 1`` additionally forks a shared-memory worker pool
  (:class:`~repro.search.executor.ServingPool`) for the call and shards
  probing, verification and ranking across it — bit-identical to the serial
  batch for every worker count, with the parent as sole hash/RNG authority
  (see ``docs/serving.md`` for when the fork overhead pays off);
* ``top_k_many(..., rank_by="estimate")`` skips exact verification and ranks
  survivors by the BayesLSH posterior MAP estimates already computed during
  pruning — the estimate-driven path trades exact scores for latency (see
  ``docs/serving.md`` for the measured trade-off);
* ``delete(rows)`` tombstones rows (filtered from every result immediately;
  band postings are lazily rebuilt once past the ``staleness_budget``);
* ``save(path)`` / ``load(path)`` round-trip the entire index — segments,
  hash-family state (drawn coefficients/projections *and* RNG stream
  position), per-segment signature stores, band postings and tombstones —
  through a versioned ``.npz`` snapshot (:mod:`repro.serving.snapshot`),
  bit-identically: a loaded index answers every query exactly like the
  instance that saved it.  ``save(path, compact=True)`` additionally merges
  all segments into one and drops tombstoned rows (renumbering the survivors
  while preserving their external ids).
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.sparse as sp

from repro.candidates.lsh_index import BandPostings, signatures_for_false_negative_rate
from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHParams
from repro.core.posteriors import make_posterior
from repro.search.engine import as_collection
from repro.search.results import ScoredPair
from repro.serving.segments import SegmentedCollection
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection

__all__ = ["QueryIndex"]

_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2


class QueryIndex:
    """An LSH index over a collection supporting threshold and top-k queries.

    Parameters
    ----------
    data:
        The collection to index (anything ``as_collection`` accepts).
    measure:
        ``"cosine"``, ``"jaccard"`` or ``"binary_cosine"``.
    threshold:
        Default similarity threshold for queries (also controls how many
        signatures the index builds for the target recall).
    false_negative_rate:
        Target probability of missing an object exactly at the threshold.
    signature_width:
        Hashes per signature band; defaults to the measure's standard width.
    verification:
        ``"bayes"`` (default) verifies candidates with BayesLSH pruning and
        returns similarity estimates; ``"exact"`` computes exact similarities
        for every candidate.
    epsilon, delta, gamma, k, max_hashes:
        BayesLSH parameters used when ``verification="bayes"``.
    seed:
        Seed for the hash family.
    staleness_budget:
        Maximum fraction of band-posting members that may be tombstoned by
        :meth:`delete` before the next query triggers a posting rebuild.
        ``0.0`` rebuilds on the first query after any deletion; ``1.0``
        effectively never rebuilds (tombstones are always filtered from
        results either way — the budget only bounds wasted probe work).

    Determinism contract: for a fixed ``(seed, measure, parameters)``, query
    answers are a pure function of the *logical* collection — independent of
    the batch size queries arrive in, of how the corpus was segmented by
    ``insert`` history, and of ``save``/``load`` round trips.
    """

    def __init__(
        self,
        data,
        measure: str = "cosine",
        threshold: float = 0.7,
        false_negative_rate: float = 0.03,
        signature_width: int | None = None,
        verification: str = "bayes",
        epsilon: float = 0.03,
        delta: float = 0.05,
        gamma: float = 0.03,
        k: int = 32,
        max_hashes: int = 2048,
        seed: int = 0,
        staleness_budget: float = 0.2,
    ):
        if verification not in ("bayes", "exact"):
            raise ValueError(f"verification must be 'bayes' or 'exact', got {verification!r}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        if not 0.0 <= staleness_budget <= 1.0:
            raise ValueError(
                f"staleness_budget must lie in [0, 1], got {staleness_budget}"
            )
        self._measure = get_measure(measure)
        initial = as_collection(data)
        self._threshold = float(threshold)
        self._false_negative_rate = float(false_negative_rate)
        self._verification = verification
        self._params = BayesLSHParams(
            threshold=threshold, epsilon=epsilon, delta=delta, gamma=gamma, k=k, max_hashes=max_hashes
        )
        self._seed = int(seed)
        self._staleness_budget = float(staleness_budget)
        self._segments = SegmentedCollection(
            self._measure, initial.n_features, seed=self._seed
        )
        self._family = self._segments.family

        if signature_width is None:
            signature_width = 8 if self._measure.lsh_family == "simhash" else 4
        self._signature_width = int(signature_width)
        collision = (
            self._threshold
            if self._measure.lsh_family == "minhash"
            else self._family.collision_similarity(self._threshold)
        )
        self._n_signatures = signatures_for_false_negative_rate(
            collision, self._signature_width, false_negative_rate
        )

        first = self._segments.append(initial, self._banding_hashes)
        self._next_default_id = self._initial_next_default_id()
        self._deleted = np.zeros(first.n_vectors, dtype=bool)
        self._n_stale_postings = 0
        self._postings_lock = threading.Lock()
        non_empty = np.flatnonzero(first.prepared.row_nnz > 0)
        self._postings = BandPostings.build(
            self._segments, non_empty, self._n_signatures, self._signature_width
        )
        self._wire_tables()
        self._update_lock = threading.Lock()
        self._epoch = 0
        self._resident = None
        self._wire_durability()

    def _wire_durability(self) -> None:
        """Initialise the (detached) write-ahead-log and replay state."""
        self._wal = None
        self._wal_position: int | None = None
        self._mutations = 0
        self._replaying = False
        self._replay_counters = {
            "replayed_records": 0,
            "replayed_inserts": 0,
            "replayed_deletes": 0,
            "last_replayed_seq": 0,
        }

    @property
    def _banding_hashes(self) -> int:
        """Hashes every segment is materialised to at ingest (the band probe span)."""
        return self._n_signatures * self._signature_width

    def _initial_next_default_id(self) -> int:
        """First default id :meth:`insert` may assign, derived from current ids.

        Computed once per build/load (an O(N) scan) and maintained as a
        running counter afterwards, so default-id inserts stay O(batch).
        Integer ids advance the counter past their maximum; non-integer ids
        fall back to the row-count floor (the historical row-index default).
        """
        existing = self._segments.ids
        if len(existing) and np.issubdtype(np.asarray(existing).dtype, np.integer):
            return max(int(existing.max()) + 1, self._segments.n_vectors)
        return self._segments.n_vectors

    def _wire_tables(self, defer: bool = False) -> None:
        """(Re)initialise the BayesLSH decision machinery shared across queries.

        The posterior, the min-matches pruning table and the concentration
        cache are deterministic functions of the index parameters, so
        snapshots never serialise them.  With ``defer=True`` (the snapshot
        load path) even the computation is postponed to the first query —
        the tables cost tens of milliseconds regardless of corpus size,
        which would otherwise dominate a memory-mapped cold start.
        """
        self._tables_lock = threading.Lock()
        self._tables: tuple | None = None
        if not defer:
            self._build_tables()

    def _build_tables(self) -> tuple:
        """Materialise the decision tables exactly once (thread-safe)."""
        with self._tables_lock:
            if self._tables is None:
                params = self._params
                posterior = make_posterior(self._measure.name)
                min_matches = MinMatchesTable(
                    posterior, self._threshold, params.epsilon, params.k, params.max_hashes
                )
                concentration = ConcentrationCache(posterior, params.delta, params.gamma)
                self._tables = (posterior, min_matches, concentration)
            return self._tables

    @property
    def _posterior(self):
        """The similarity posterior (lazily built after a snapshot load)."""
        return (self._tables or self._build_tables())[0]

    @property
    def _min_matches(self):
        """The min-matches pruning table (lazily built after a snapshot load)."""
        return (self._tables or self._build_tables())[1]

    @property
    def _concentration(self):
        """The posterior concentration cache (lazily built after a snapshot load)."""
        return (self._tables or self._build_tables())[2]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_indexed(self) -> int:
        """Number of vector slots in the index (including tombstoned rows)."""
        return self._segments.n_vectors

    @property
    def n_alive(self) -> int:
        """Number of indexed vectors that have not been deleted."""
        return int(self._segments.n_vectors - self._deleted.sum())

    @property
    def n_deleted(self) -> int:
        """Number of tombstoned rows still occupying index slots."""
        return int(self._deleted.sum())

    @property
    def n_segments(self) -> int:
        """Number of sealed collection segments (1 after a build or compaction)."""
        return self._segments.n_segments

    @property
    def ids(self) -> np.ndarray:
        """External identifiers, one per indexed row (stable under compaction)."""
        return self._segments.ids

    @property
    def n_signatures(self) -> int:
        """Number of LSH bands (signatures) the candidate index probes."""
        return self._n_signatures

    @property
    def signature_width(self) -> int:
        """Hashes concatenated per band."""
        return self._signature_width

    @property
    def staleness_budget(self) -> float:
        """Tombstoned posting fraction tolerated before a lazy rebuild."""
        return self._staleness_budget

    @property
    def n_stale_postings(self) -> int:
        """Tombstoned rows still present in the band postings."""
        return self._n_stale_postings

    @property
    def verification(self) -> str:
        """The verification mode: ``"bayes"`` or ``"exact"``."""
        return self._verification

    @property
    def threshold(self) -> float:
        """The index-level similarity threshold."""
        return self._threshold

    def as_collection(self) -> VectorCollection:
        """The indexed corpus merged into one monolithic collection.

        Tombstoned rows are *included* (they still occupy index slots); this
        is the O(N) consolidation ingest avoids, intended for handing the
        corpus to the all-pairs pipelines or for tests that rebuild an
        equivalent index from scratch.
        """
        return self._segments.to_collection()

    # ------------------------------------------------------------------ #
    # query coercion
    # ------------------------------------------------------------------ #
    def _queries_collection(self, queries) -> VectorCollection:
        """Coerce a query batch into a prepared collection in the index's space."""
        collection = as_collection(queries, n_features=self._segments.n_features)
        return self._measure.prepare(collection)

    def _single_query_batch(self, vector):
        """Wrap one query vector as a 1-row batch for the batched kernels."""
        if isinstance(vector, (set, frozenset, dict)):
            return [vector]
        if sp.issparse(vector):
            return vector
        if (
            isinstance(vector, (list, tuple))
            and vector
            and isinstance(vector[0], (int, np.integer))
        ):
            return [vector]
        return np.atleast_2d(np.asarray(vector, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    @property
    def _postings(self):
        """The band postings, built lazily on first use after a snapshot load.

        A loaded index carries only the postings' *member sequence*; the
        posting dictionaries themselves are a deterministic function of it
        and are rebuilt here on the first probe (or insert) instead of at
        load time — which is what keeps a memory-mapped load a millisecond
        cold start.  Building is identical to the eager path bit for bit;
        only *when* the O(N) band-key gather runs changes.
        """
        postings = self._postings_obj
        if postings is None:
            postings = self._build_postings()
        return postings

    @_postings.setter
    def _postings(self, value) -> None:
        # Publish the built postings before retiring the pending member
        # sequence, so a racing ``_postings_members`` reader always finds
        # one of the two.
        self._postings_obj = value
        self._lazy_postings_members = None

    def _build_postings(self):
        """Materialise lazily-restored postings exactly once (thread-safe).

        Serialises on a dedicated lock (not the update lock) so an
        ``insert`` holding the update lock can trigger the build without
        deadlocking, while concurrent readers build at most once.
        """
        with self._postings_lock:
            if self._postings_obj is None:
                self._postings = BandPostings.build(
                    self._segments,
                    self._lazy_postings_members,
                    self._n_signatures,
                    self._signature_width,
                )
            return self._postings_obj

    def _postings_members(self) -> np.ndarray:
        """The postings' member sequence without forcing a lazy build.

        Snapshot writers serialise only this sequence; when the postings
        have not been materialised yet it *is* the pending restored array,
        so saving a freshly mmap-loaded index never pays the build.
        """
        postings = self._postings_obj
        if postings is None:
            members = self._lazy_postings_members
            if members is not None:
                return members
            postings = self._postings_obj  # a racing build just published
        return postings.members

    def _maybe_rebuild_postings(self) -> None:
        """Lazily rebuild the band postings once past the staleness budget.

        The rebuild runs under the index's update lock so a concurrent reader
        triggering it cannot interleave with ``insert``/``delete`` (or with a
        second reader's rebuild); readers that need no rebuild never take the
        lock.  The postings reference is swapped atomically at the end.
        """
        if self._n_stale_postings == 0:
            return
        if self._n_stale_postings <= self._staleness_budget * self._postings.n_members:
            return
        with self._update_lock:
            # Re-check under the lock: another reader may have just rebuilt.
            if self._n_stale_postings == 0 or (
                self._n_stale_postings
                <= self._staleness_budget * self._postings.n_members
            ):
                return
            alive_non_empty = np.flatnonzero(
                (self._segments.row_nnz > 0) & ~self._deleted
            )
            self._postings = BandPostings.build(
                self._segments, alive_non_empty, self._n_signatures, self._signature_width
            )
            self._n_stale_postings = 0
            # Forked resident workers hold the old postings object (their
            # fork's copy-on-write view); bump the epoch so the next batch
            # refreshes them onto the rebuilt, tombstone-free postings.
            self._epoch += 1

    def _hash_queries(self, query_prepared: VectorCollection):
        """Hash the non-empty query rows to the banding width.

        Returns ``(query rows, family, store)``; the family is the batch's
        clone of the master (the Bayesian verifier later extends it — and
        hence the same hash stream — past the banding hashes).  Empty query
        vectors share no features with anything and their hashes are
        degenerate, so only non-empty rows participate.
        """
        self._maybe_rebuild_postings()
        query_rows = np.flatnonzero(query_prepared.row_nnz > 0)
        if len(query_rows) == 0:
            return query_rows, None, None
        query_family = self._family.clone_for(query_prepared)
        # Probing only reads the banding hashes; verification lazily extends
        # the family when (and only when) the bayes path needs more.
        query_store = query_family.signatures(self._banding_hashes)
        return query_rows, query_family, query_store

    def _serving_task(self, query_prepared, query_store):
        """Build the fork-inherited worker state for the current index state.

        The caller must hold the update lock: the task captures the segment
        list, postings and row count as one consistent snapshot.  A resident
        pool forked between batches passes ``None`` query state — the first
        ``"batch"`` message installs it.
        """
        from repro.search.executor import ServingTask

        return ServingTask(
            segments=self._segments,
            postings=self._postings,
            query_prepared=query_prepared,
            query_store=query_store,
            min_matches=self._min_matches,
            concentration=self._concentration,
            posterior=self._posterior,
            params=self._params,
            n_vectors=self._segments.n_vectors,
        )

    def _make_serving_pool(
        self, n_workers, query_prepared, query_store, round_timeout=None
    ):
        """Fork a :class:`~repro.search.executor.ServingPool` for this batch.

        Called after the query batch is hashed to the banding width, so the
        workers inherit the query store (and every per-segment store) through
        the fork; only columns materialised later travel via shared memory.
        Construction holds the update lock so a concurrent ``insert`` cannot
        commit a segment between the pool's fork-time snapshot and the worker
        forks — every worker then inherits the same segment list and
        postings (writers block for the few milliseconds of forking; other
        readers are unaffected).
        """
        from repro.search.executor import ServingPool

        with self._update_lock:
            task = self._serving_task(query_prepared, query_store)
            return ServingPool(n_workers, task, round_timeout=round_timeout)

    def _lease_pool(self, n_workers, query_prepared, query_store, round_timeout):
        """The pool serving this call: resident lease, per-call fork, or ``None``.

        ``n_workers=None`` routes to the resident pool when one is attached
        (serial otherwise); an explicit count keeps the historical per-call
        semantics — ``1`` forces serial, ``> 1`` forks a throwaway
        :class:`~repro.search.executor.ServingPool`.  A resident lease first
        runs the epoch check under the update lock, re-forking the pool if
        segment churn outdated its copy-on-write view.
        """
        if n_workers is None:
            resident = self._resident
            if resident is None:
                return None

            def refresh():
                with self._update_lock:
                    if resident.epoch != self._epoch:
                        resident.refresh(self._serving_task(None, None), self._epoch)

            return resident.lease(
                query_prepared,
                query_store,
                round_timeout=round_timeout,
                refresh=refresh,
            )
        if n_workers > 1:
            return self._make_serving_pool(
                n_workers, query_prepared, query_store, round_timeout=round_timeout
            )
        return None

    @staticmethod
    def _check_n_workers(n_workers):
        if n_workers is None:
            return None  # defer to the resident pool when one is attached
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        return n_workers

    def _probe(
        self,
        query_prepared: VectorCollection,
        n_workers: int | None = 1,
        round_timeout: float | None = None,
    ):
        """Candidate ``(query row, collection row)`` pairs from the band index.

        Only non-empty query rows probe, and tombstoned collection rows are
        filtered out.  Pairs come back deduplicated and sorted by
        ``(query row, collection row)``, together with the query batch's hash
        family.  With a pool (a per-call fork for ``n_workers > 1``, or the
        resident pool's batch lease for ``n_workers=None`` — see
        :meth:`_lease_pool`) probing is sharded by query slice across its
        workers (bit-identical merge); the pool is returned as the fourth
        element and the *caller* must ``release()`` it.  Any exception on
        this path releases the pool before propagating, so neither a
        ``/dev/shm`` segment nor the resident lease outlives the call.
        """
        query_rows, query_family, query_store = self._hash_queries(query_prepared)
        if query_family is None:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, None, None
        pool = self._lease_pool(n_workers, query_prepared, query_store, round_timeout)
        try:
            if pool is not None:
                positions, rows = pool.probe(query_rows)
            else:
                positions, rows = self._postings.probe_many(
                    query_store, query_rows, self._segments.n_vectors
                )
            keep = ~self._deleted[rows]
            return query_rows[positions[keep]], rows[keep], query_family, pool
        except BaseException:
            if pool is not None:
                pool.release()
            raise

    # ------------------------------------------------------------------ #
    # verification kernels
    # ------------------------------------------------------------------ #
    def _verify_bayes(
        self, query_family, query_rows: np.ndarray, rows: np.ndarray, pool=None
    ) -> np.ndarray:
        """Round-synchronous BayesLSH verification of (query, candidate) pairs.

        The batched twin of Algorithm 1's per-pair loop, with hash agreements
        counted between the query store (``query_family``'s, from the probe
        phase) and the per-segment collection stores (global rows routed to
        their owning segments, which extend round-lazily and independently).
        Every prune/emit decision depends only on the pair's own ``(m, n)``,
        so the outcome per pair is independent of which other pairs share the
        batch — the bit-identity contract between ``query_many`` and looped
        ``query`` — and of how the collection is segmented.  With a
        :class:`~repro.search.executor.ServingPool` the pairs are sharded
        across its workers round-synchronously (the parent stays the sole
        hash-extension authority); the merged estimates are bit-identical.

        Returns the pair estimates with NaN marking pruned pairs.
        """
        if pool is not None:
            return pool.verify_bayes(query_family, query_rows, rows)
        params = self._params
        n_pairs = len(query_rows)
        status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
        matches = np.zeros(n_pairs, dtype=np.int64)
        hashes_seen = np.zeros(n_pairs, dtype=np.int64)
        for round_index in range(params.n_rounds if n_pairs else 0):
            active = np.flatnonzero(status == _ACTIVE)
            if len(active) == 0:
                break
            n_prev = round_index * params.k
            n_now = n_prev + params.k
            # Lazy, round-synchronous hashing — exactly the core verifier's
            # pattern: rounds most pairs never reach are never hashed, and
            # only segments that still own active pairs extend their stores
            # (the families round requests up to their block size, so the
            # whole batch still extends in a handful of kernel calls).
            query_store = query_family.signatures(n_now)
            matches[active] += self._segments.count_matches_cross(
                query_store, query_rows[active], rows[active], n_prev, n_now
            )
            hashes_seen[active] = n_now
            keep_mask = self._min_matches.passes_many(matches[active], n_now)
            status[active[~keep_mask]] = _PRUNED
            survivors = active[keep_mask]
            if len(survivors):
                concentrated = self._concentration.is_concentrated_many(
                    matches[survivors], n_now
                )
                status[survivors[concentrated]] = _EMITTED

        estimates = np.full(n_pairs, np.nan, dtype=np.float64)
        emitted = np.flatnonzero(status != _PRUNED)
        if len(emitted):
            estimates[emitted] = np.where(
                hashes_seen[emitted] > 0,
                self._posterior.map_estimate_many(matches[emitted], hashes_seen[emitted]),
                0.0,
            )
        return estimates

    def _cross_exact(
        self,
        query_prepared: VectorCollection,
        query_rows: np.ndarray,
        rows: np.ndarray,
        pool=None,
    ) -> np.ndarray:
        """Exact similarities for (query, global row) pairs, segment-routed.

        With a pool the pair array is sharded across the workers (exact
        similarities are per-pair and row-local, so the shard merge is
        bit-identical to the one-shot kernel).
        """
        if pool is not None:
            return pool.map_exact(query_rows, rows)
        return self._segments.cross_similarities(query_prepared, query_rows, rows)

    @staticmethod
    def _group_pairs(
        n_queries: int, query_rows: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> list[list[ScoredPair]]:
        """Split sorted (query, row, value) triples into per-query result lists."""
        results: list[list[ScoredPair]] = [[] for _ in range(n_queries)]
        for q, j, value in zip(query_rows.tolist(), rows.tolist(), values.tolist()):
            results[q].append(ScoredPair(-1, j, float(value)))
        return results

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_many(
        self,
        queries,
        threshold: float | None = None,
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ) -> list[list[ScoredPair]]:
        """Threshold queries for a whole batch at once.

        ``queries`` is anything ``as_collection`` accepts — typically a dense
        or CSR matrix with one query per row, or a list of token sets /
        feature dicts.  Returns one result list per query row, each exactly
        equal to ``self.query(row)``: the batch is hashed in one kernel call
        and verified through the same vectorised kernels, and every per-pair
        decision is independent of the rest of the batch.

        Result entries are :class:`ScoredPair` values whose ``i`` field is
        always -1 (the query is not part of the collection) and whose ``j``
        field is the index of the matching row.  Similarities are estimates
        under ``verification="bayes"`` and exact values under ``"exact"``;
        either way only pairs whose reported similarity exceeds the
        (per-call) threshold are returned.  Note that the Bayesian pruning
        tables stay tuned to the *index* threshold: overriding per call
        filters the estimates, but a threshold far below the index's cannot
        recover pairs the index-level pruning already discarded.

        ``n_workers > 1`` forks a shared-memory worker pool for this call and
        shards probing, verification and scoring across it — results are
        bit-identical to the serial batch for every worker count (see
        ``docs/serving.md`` for when the fork overhead pays off).  Leaving
        ``n_workers`` unset runs on the index's resident pool when
        :meth:`start_pool` attached one (serial otherwise).  Worker
        loss degrades gracefully: failed shards re-execute serially in the
        parent with the same kernels, still bit-identical; ``round_timeout``
        bounds how long a silent-but-alive worker stalls the call before it
        is declared hung (``None`` waits forever; see "Operational
        robustness" in ``docs/serving.md``).
        """
        threshold = self._threshold if threshold is None else float(threshold)
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        n_workers = self._check_n_workers(n_workers)
        query_prepared = self._queries_collection(queries)
        query_rows, rows, query_family, pool = self._probe(
            query_prepared, n_workers=n_workers, round_timeout=round_timeout
        )
        try:
            if len(query_rows) == 0:
                return [[] for _ in range(query_prepared.n_vectors)]

            if self._verification == "exact":
                values = self._cross_exact(query_prepared, query_rows, rows, pool=pool)
                keep = values > threshold
            else:
                values = self._verify_bayes(query_family, query_rows, rows, pool=pool)
                keep = ~np.isnan(values) & (values > threshold)
        finally:
            if pool is not None:
                pool.release()
        return self._group_pairs(
            query_prepared.n_vectors, query_rows[keep], rows[keep], values[keep]
        )

    def query(
        self,
        vector,
        threshold: float | None = None,
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ) -> list[ScoredPair]:
        """All indexed objects with similarity to ``vector`` above the threshold.

        Equivalent to ``query_many([vector])[0]`` — the singular entry point
        simply runs the batched kernels on a batch of one.
        """
        return self.query_many(
            self._single_query_batch(vector),
            threshold=threshold,
            n_workers=n_workers,
            round_timeout=round_timeout,
        )[0]

    def top_k_many(
        self,
        queries,
        k: int = 10,
        floor_threshold: float = 0.1,
        rank_by: str = "exact",
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ) -> list[list[ScoredPair]]:
        """The ``k`` most similar indexed objects for each query in a batch.

        Returns one list per query row, each exactly equal to
        ``self.top_k(row, k, floor_threshold, rank_by)`` — the batch is
        bit-identical to the per-query loop.  With an LSH index tuned for
        ``threshold`` the result is approximate in the same sense as the
        underlying index: objects the index misses cannot be returned.

        ``rank_by`` selects the scoring path:

        * ``"exact"`` (default) — candidates from the band postings are
          scored with the exact cross-collection similarity kernel; the
          best ``k`` above ``floor_threshold`` are returned in decreasing
          order of (exact) similarity.
        * ``"estimate"`` — candidates are run through the BayesLSH pruning
          rounds (requires ``verification="bayes"``) and ranked by the
          posterior MAP estimates those rounds already computed; no exact
          similarity is ever evaluated.  Estimates wobble within the
          ``epsilon``/``delta``/``gamma`` accuracy envelope, and candidates
          the pruning discards as below the *index* threshold cannot appear
          even when ``floor_threshold`` is lower — the trade-off is latency:
          ranking reuses hash agreements instead of touching the raw
          vectors (measured in ``benchmarks/test_bench_serving.py`` and
          documented in ``docs/serving.md``).

        ``n_workers > 1`` forks a shared-memory worker pool for this call and
        shards probing, verification and ranking across it, bit-identically
        to the serial batch (see ``docs/serving.md``); leaving it unset runs
        on the resident pool when :meth:`start_pool` attached one (serial
        otherwise).  Worker loss degrades
        gracefully — failed shards re-execute serially in the parent, still
        bit-identically — and ``round_timeout`` bounds how long a hung
        worker may stall the call (see "Operational robustness" in
        ``docs/serving.md``).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if rank_by not in ("exact", "estimate"):
            raise ValueError(f"rank_by must be 'exact' or 'estimate', got {rank_by!r}")
        if rank_by == "estimate" and self._verification != "bayes":
            raise ValueError(
                "rank_by='estimate' requires verification='bayes' "
                "(the exact index computes no posterior estimates)"
            )
        n_workers = self._check_n_workers(n_workers)
        query_prepared = self._queries_collection(queries)
        n_queries = query_prepared.n_vectors
        query_rows, rows, query_family, pool = self._probe(
            query_prepared, n_workers=n_workers, round_timeout=round_timeout
        )
        try:
            if len(query_rows) == 0:
                return [[] for _ in range(n_queries)]
            if rank_by == "estimate":
                values = self._verify_bayes(query_family, query_rows, rows, pool=pool)
                keep = ~np.isnan(values)
                query_rows, rows, values = query_rows[keep], rows[keep], values[keep]
            else:
                values = self._cross_exact(query_prepared, query_rows, rows, pool=pool)
        finally:
            if pool is not None:
                pool.release()
        grouped = self._group_pairs(n_queries, query_rows, rows, values)
        results: list[list[ScoredPair]] = []
        for scored in grouped:
            scored = [pair for pair in scored if pair.similarity > floor_threshold]
            scored.sort(key=lambda pair: pair.similarity, reverse=True)
            results.append(scored[:k])
        return results

    def top_k(
        self,
        vector,
        k: int = 10,
        floor_threshold: float = 0.1,
        rank_by: str = "exact",
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ) -> list[ScoredPair]:
        """The ``k`` indexed objects most similar to ``vector``.

        Equivalent to ``top_k_many([vector], k, floor_threshold, rank_by)[0]``.
        """
        return self.top_k_many(
            self._single_query_batch(vector),
            k=k,
            floor_threshold=floor_threshold,
            rank_by=rank_by,
            n_workers=n_workers,
            round_timeout=round_timeout,
        )[0]

    # ------------------------------------------------------------------ #
    # resident pool lifecycle
    # ------------------------------------------------------------------ #
    def start_pool(
        self,
        n_workers: int = 2,
        round_timeout: float | None = None,
        max_worker_failures: int = 3,
        respawn_backoff: float = 0.1,
        respawn_backoff_cap: float = 5.0,
    ):
        """Attach a resident, self-healing worker pool to this index.

        Once attached, every ``query``/``query_many``/``top_k``/
        ``top_k_many`` call that leaves ``n_workers`` unset runs on the pool
        — paying a per-batch control message instead of a per-call fork —
        and stays bit-identical to the serial path.  An explicit
        ``n_workers`` still behaves as before (``1`` forces serial, ``> 1``
        forks a throwaway pool for that call).  Concurrent callers share
        the pool; their batches serialise on its lease.

        ``round_timeout`` is the default hung-worker deadline per gather
        (overridable per call); ``max_worker_failures`` consecutive failures
        quarantine a crash-looping worker slot, and failed slots otherwise
        respawn at batch boundaries after a capped exponential backoff
        (``respawn_backoff``/``respawn_backoff_cap`` seconds) — see
        :class:`~repro.search.executor.ResidentServingPool`.

        Returns the pool (handy for :meth:`pool_stats`-style inspection).
        The pool must be shut down with :meth:`close` — or use the index as
        a context manager.  Only one resident pool may be attached at a
        time; ``insert`` and posting rebuilds are safe while it runs (the
        epoch mechanism refreshes the pool before its next batch).
        """
        from repro.search.executor import ResidentServingPool

        if self._resident is not None:
            raise RuntimeError(
                "a resident pool is already attached; close() it before "
                "starting another"
            )
        with self._update_lock:
            self._resident = ResidentServingPool(
                n_workers,
                self._serving_task(None, None),
                round_timeout=round_timeout,
                epoch=self._epoch,
                max_worker_failures=max_worker_failures,
                respawn_backoff=respawn_backoff,
                respawn_backoff_cap=respawn_backoff_cap,
            )
        return self._resident

    def close(self) -> None:
        """Deterministically shut down the resident pool, if one is attached.

        Waits for an in-flight batch, stops every worker and unlinks every
        ``/dev/shm`` segment the pool published.  Idempotent; the index
        remains fully usable afterwards on the serial path (or a fresh
        :meth:`start_pool`).
        """
        resident = self._resident
        self._resident = None
        if resident is not None:
            resident.close()

    def pool_stats(self) -> dict | None:
        """Resident-pool health (see ``ResidentServingPool.stats``), or ``None``.

        Exposes ``live_workers``, ``quarantined``, ``respawns``, ``epoch``
        and batch counters — the dict the serving daemon's ``stats``
        endpoint reports under ``"pool"``.
        """
        resident = self._resident
        return None if resident is None else resident.stats()

    def __enter__(self) -> "QueryIndex":
        """Context-manager entry; pairs with the :meth:`close` at exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close` the resident pool."""
        self.close()

    # ------------------------------------------------------------------ #
    # durability: write-ahead logging and crash recovery
    # ------------------------------------------------------------------ #
    @property
    def wal(self):
        """The attached :class:`~repro.serving.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    @property
    def replaying(self) -> bool:
        """True while :meth:`recover` is re-applying WAL records.

        The serving daemon's ``health``/``ready`` endpoints degrade to
        not-ready while this is set — a recovering index is consistent at
        every point (each replayed batch commits atomically under the
        update lock) but not yet caught up to its acknowledged state.
        """
        return self._replaying

    def attach_wal(self, wal) -> None:
        """Start write-ahead logging every mutation to ``wal``.

        ``wal`` is a :class:`~repro.serving.wal.WriteAheadLog` or a
        directory path for one (opened with its default ``fsync="always"``
        policy).  From this call on, ``insert``/``delete`` append a framed
        record — under the update lock, before mutating any in-memory
        state — so an acknowledged mutation is recoverable by
        :meth:`load` with ``wal=`` (or :meth:`recover`) after a crash.
        Attach either to a fresh index (log from the start) or right after
        a snapshot load/recovery; attaching an out-of-sync log is the
        caller's error and will surface as a replay mismatch.
        """
        from repro.serving.wal import WriteAheadLog

        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        self._wal = wal

    def wal_stats(self) -> dict | None:
        """The attached WAL's durability counters (see
        :meth:`~repro.serving.wal.WriteAheadLog.stats`), or ``None``."""
        wal = self._wal
        return None if wal is None else wal.stats()

    def replay_stats(self) -> dict:
        """Counters from the last :meth:`recover` run (zeros if never run)."""
        return dict(self._replay_counters)

    def recover(self, wal) -> "QueryIndex":
        """Replay ``wal``'s tail on top of this freshly loaded snapshot.

        Re-applies every record from the snapshot's checkpoint position
        (the ``wal_segment`` its meta recorded at save time) through the
        same ``insert``/``delete`` code paths the original mutations took —
        with the logged *resolved* ids — so the recovered index is
        bit-identical to the uncrashed one: same segment layout, same
        hash-family RNG position, same answers.  A torn trailing record
        (the residue of a crash mid-append) is truncated away; interior
        corruption raises
        :class:`~repro.serving.snapshot.SnapshotCorruptError`.  The WAL is
        attached afterwards, so new mutations continue the same log.

        Only meaningful on an index that has not been mutated since it was
        loaded; an index whose snapshot carries no WAL position refuses a
        non-empty log (replaying from an unknown offset could double-apply
        mutations the snapshot already contains).  Sets :attr:`replaying`
        for the duration; returns ``self``.
        """
        from repro.serving.wal import WriteAheadLog
        from repro.testing import faults as _faults

        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        if self._wal is not None:
            raise RuntimeError("a write-ahead log is already attached")
        if self._mutations:
            raise ValueError(
                "this index has been mutated since it was loaded — recover() "
                "replays on top of a pristine snapshot, or it would interleave "
                "logged and unlogged mutations"
            )
        start_segment = self._wal_position
        if start_segment is None:
            if wal.has_records():
                raise ValueError(
                    "this snapshot carries no WAL position but the log has "
                    "records — replaying could double-apply mutations the "
                    "snapshot already contains"
                )
            start_segment = wal.active_segment
        counters = {
            "replayed_records": 0,
            "replayed_inserts": 0,
            "replayed_deletes": 0,
            "last_replayed_seq": 0,
        }
        self._replaying = True
        try:
            for seq, kind, arrays in wal.records(start_segment=start_segment):
                if kind == "insert":
                    collection = wal.replay_collection(arrays)
                    self.insert(collection, ids=collection.ids)
                    counters["replayed_inserts"] += 1
                else:
                    self.delete(arrays["rows"])
                    counters["replayed_deletes"] += 1
                counters["replayed_records"] += 1
                counters["last_replayed_seq"] = seq
                _faults.fire("wal_replay", index=self, seq=seq)
        finally:
            self._replaying = False
            self._replay_counters = counters
        self._wal = wal
        self._wal_position = wal.active_segment
        return self

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def insert(self, data, ids=None) -> np.ndarray:
        """Append new vectors to the index without rebuilding it.

        The batch is sealed as a fresh collection segment: prepared, hashed
        with the *same* hash functions as the existing corpus (the family's
        determinism contract guarantees hash function ``i`` agrees across
        collections) and added to the band postings — all in O(batch), no
        existing segment is touched.  Returns the row indices assigned to
        the new vectors.

        ``ids`` optionally supplies external identifiers for the new rows.
        The default continues after the largest existing integer id — equal
        to the row indices on an index that never had custom ids, but still
        collision-free after a compacted snapshot load, where surviving rows
        keep ids larger than their (renumbered) row indices.

        Mutators (``insert``/``delete``/the lazy posting rebuild) serialise
        on the index's update lock; *reader* threads may run concurrently
        with one ingest stream (state is published in an order that keeps
        every observable row consistent — see
        :mod:`repro.serving.segments` and
        ``tests/serving/test_concurrency.py``).
        """
        new_collection = as_collection(data, n_features=self._segments.n_features)
        with self._update_lock:
            n_new = new_collection.n_vectors
            n_before = self._segments.n_vectors
            new_rows = np.arange(n_before, n_before + n_new, dtype=np.int64)
            if n_new == 0:
                return new_rows
            if ids is None:
                ids = np.arange(
                    self._next_default_id, self._next_default_id + n_new, dtype=np.int64
                )
            else:
                ids = np.asarray(list(ids))
                if len(ids) != n_new:
                    raise ValueError(
                        f"ids has length {len(ids)} but {n_new} rows were inserted"
                    )
            # Write-ahead: the batch (with its *resolved* ids) is logged and
            # made durable before any in-memory state changes — a failure
            # here aborts the insert with the index untouched, and a crash
            # after this line replays to exactly the state being built below.
            if self._wal is not None:
                self._wal.append_insert(new_collection, ids)
            self._mutations += 1
            if len(ids) and np.issubdtype(ids.dtype, np.integer):
                self._next_default_id = max(self._next_default_id, int(ids.max()) + 1)
            self._next_default_id = max(self._next_default_id, n_before + n_new)
            segment = self._segments.append(new_collection, self._banding_hashes, ids=ids)
            # Publication order keeps concurrent readers consistent: the
            # tombstone mask must cover every row before that row can appear
            # in a probe result, so extend it before the postings learn the
            # new rows.
            self._deleted = np.concatenate([self._deleted, np.zeros(n_new, dtype=bool)])
            self._postings.add(self._segments, new_rows[segment.prepared.row_nnz > 0])
            # Segment churn invalidates forked resident workers (they serve
            # a copy-on-write view of the pre-insert corpus); the epoch bump
            # makes the pool refresh before it admits another batch.
            self._epoch += 1
            return new_rows

    def delete(self, rows) -> int:
        """Tombstone indexed rows (by row index); returns how many were live.

        Deleted rows stay in the signature store and (until the staleness
        budget forces a posting rebuild) in the band postings, but are
        filtered from every query result immediately.  Deleting an already
        deleted row is a no-op.  Tombstones are physically dropped only by
        ``save(path, compact=True)``.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64).ravel())
        with self._update_lock:
            if len(rows) and (rows[0] < 0 or rows[-1] >= self._segments.n_vectors):
                raise IndexError(
                    f"row indices must lie in [0, {self._segments.n_vectors}), got "
                    f"[{rows[0]}, {rows[-1]}]"
                )
            # Write-ahead: log the validated row set before the tombstones
            # land (delete is idempotent, so replaying the full set — not
            # just the not-yet-deleted survivors — is equivalent).
            if self._wal is not None:
                self._wal.append_delete(rows)
            self._mutations += 1
            fresh = rows[~self._deleted[rows]]
            self._deleted[fresh] = True
            self._n_stale_postings += int(np.sum(self._segments.row_nnz[fresh] > 0))
            return len(fresh)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_snapshot(
        cls,
        *,
        segments_data: list,
        n_features: int,
        meta: dict,
        family_state: dict,
        deleted: np.ndarray,
        postings_members: np.ndarray,
    ) -> "QueryIndex":
        """Rewire an index from deserialised snapshot state.

        ``segments_data`` is a list of ``(collection, store, ids)`` triples,
        one per sealed segment.  Only the state a snapshot carries is taken
        from the arguments; the prepared views, hash family clones, band
        postings and BayesLSH decision tables are deterministic functions of
        it and are rebuilt here (see :mod:`repro.serving.snapshot` for the
        format).
        """
        index = cls.__new__(cls)
        index._measure = get_measure(meta["measure"])
        index._threshold = float(meta["threshold"])
        index._false_negative_rate = float(meta["false_negative_rate"])
        index._verification = meta["verification"]
        index._params = BayesLSHParams(
            threshold=float(meta["threshold"]),
            epsilon=float(meta["epsilon"]),
            delta=float(meta["delta"]),
            gamma=float(meta["gamma"]),
            k=int(meta["k"]),
            max_hashes=int(meta["max_hashes"]),
        )
        index._seed = int(meta["seed"])
        index._staleness_budget = float(meta["staleness_budget"])
        index._signature_width = int(meta["signature_width"])
        index._n_signatures = int(meta["n_signatures"])
        index._segments = SegmentedCollection(
            index._measure,
            int(n_features),
            seed=index._seed,
            family_kwargs=meta.get("family_kwargs", {}),
        )
        index._family = index._segments.family
        index._family.restore_state(family_state)
        for collection, store, ids in segments_data:
            index._segments.append_restored(collection, store, ids=ids, defer=True)
        if len(deleted) != index._segments.n_vectors:
            raise ValueError(
                f"tombstone mask covers {len(deleted)} rows, collection has "
                f"{index._segments.n_vectors}"
            )
        index._next_default_id = index._initial_next_default_id()
        index._deleted = deleted
        index._n_stale_postings = int(meta["n_stale_postings"])
        # Defer the O(N) postings build to first use: only the member
        # sequence is snapshot state, the dictionaries are a deterministic
        # function of it.  This is what makes loading — especially the
        # memory-mapped flat layout — a constant-time cold start.
        index._postings_lock = threading.Lock()
        index._postings_obj = None
        index._lazy_postings_members = postings_members
        index._wire_tables(defer=True)
        index._update_lock = threading.Lock()
        index._epoch = 0
        index._resident = None
        index._wire_durability()
        # The WAL segment this snapshot checkpointed at (None for snapshots
        # saved without a WAL attached); recover() replays from here.
        position = meta.get("wal_segment")
        index._wal_position = None if position is None else int(position)
        return index

    def save(self, path, compact: bool = False, layout: str | None = None):
        """Write a versioned snapshot of the index to ``path``.

        See :mod:`repro.serving.snapshot` for the format; loading the result
        with :meth:`load` reproduces this index bit for bit — including the
        hash family's RNG position, so even hash functions drawn *after* the
        round trip are identical on both sides.

        ``layout`` selects the on-disk layout: ``"npz"`` (the default, a
        single compressed archive) or ``"flat"`` (a directory of raw array
        files plus a CRC-manifested header that :meth:`load` can memory-map
        for a millisecond cold start).  ``None`` defers to the
        ``REPRO_STORAGE`` environment toggle.  Both layouts carry identical
        state and are written crash-safely (temp + fsync + atomic rename).

        With ``compact=True`` the snapshot is written in **compacted** form:
        all segments are merged into one and tombstoned rows are physically
        dropped.  Surviving rows are renumbered (their relative order and
        external ids are preserved), so a loaded compacted index returns the
        same ``(id, similarity)`` answers the uncompacted index returns with
        tombstones filtered.  The in-memory index is not modified.
        """
        from repro.serving.snapshot import save_query_index

        return save_query_index(self, path, compact=compact, layout=layout)

    @classmethod
    def load(cls, path, storage: str | None = None, wal=None) -> "QueryIndex":
        """Load an index previously written by :meth:`save`.

        ``storage`` picks the backend for flat-layout snapshots: ``"ram"``
        reads every array into memory and verifies the full per-array CRCs,
        ``"mmap"`` memory-maps the files read-only so pages fault in on
        demand (out-of-core serving, millisecond cold start).  ``None``
        defers to the ``REPRO_STORAGE`` environment toggle; ``.npz``
        snapshots always load into RAM.  Either way the loaded index is
        bit-identical.

        ``wal`` (a :class:`~repro.serving.wal.WriteAheadLog` or its
        directory path) additionally replays the log's tail on top of the
        snapshot and attaches it for continued logging — see
        :meth:`recover` for the crash-recovery semantics and the
        bit-identity guarantee.
        """
        from repro.serving.snapshot import load_query_index

        return load_query_index(path, storage=storage, wal=wal)

    def spill(self, path) -> "QueryIndex":
        """Spill the sealed segment data to a flat snapshot and serve it mmap.

        Writes a flat-layout snapshot at ``path`` (consolidating segments'
        signature chunks in the process) and rebinds this index's segment
        backing arrays — CSR components, external ids, signature words — to
        read-only memory maps of the files just written.  Answers are
        bit-identical before and after; the difference is residency: the
        spilled columns leave the Python heap and fault back in on demand.

        Prepared similarity views and band postings stay in RAM — they are
        derived, query-hot state, and rebuilding them lazily is the job of
        :meth:`load`, not ``spill``.  The index remains fully updatable;
        inserts append new in-RAM chunks after the mmap-backed ones.

        Returns ``self`` for chaining.
        """
        from repro.serving import storage as flat_storage
        from repro.serving.snapshot import SNAPSHOT_VERSION, _snapshot_payload

        with self._update_lock:
            meta, arrays = _snapshot_payload(self, compact=False)
            flat_storage.write_flat(path, SNAPSHOT_VERSION, meta, arrays)
            _, _, restored_arrays = flat_storage.read_flat(path, storage="mmap")
            for number, segment in enumerate(self._segments.segments):
                prefix = f"seg{number}_"
                components = (
                    restored_arrays[prefix + "collection_data"],
                    restored_arrays[prefix + "collection_indices"],
                    restored_arrays[prefix + "collection_indptr"],
                )
                shape = tuple(restored_arrays[prefix + "collection_shape"])
                ids = restored_arrays[prefix + "collection_ids"]
                segment.rebind_backing(components, shape, ids, restored_arrays[prefix + "store"])
            self._epoch += 1
        return self
