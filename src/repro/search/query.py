"""Query-centric similarity search: a persistent, updatable serving index.

The paper focuses on the *all-pairs* problem, but its introduction frames the
general similarity-search problem ("given a query q, retrieve all objects
with s(x, q) > t"), and BayesLSH applies to that setting unchanged: the
candidate generation index is built once over the collection, and each query
is verified against its candidates with the same Bayesian pruning.

:class:`QueryIndex` packages that workflow as a serving subsystem:

* at build time the collection is hashed and an LSH banding index
  (:class:`~repro.candidates.lsh_index.BandPostings`) is built — the same
  signatures are reused for verification, as in the all-pairs pipelines;
* ``query_many(matrix, ...)`` / ``top_k_many(matrix, k)`` serve a *batch* of
  queries: the whole batch is hashed in one kernel call, band probes are
  unioned array-wise, and all (query, candidate) pairs are verified together
  through the vectorised cross-store kernels — bit-identical to calling the
  singular ``query(vector, ...)`` / ``top_k(vector, k)`` per row;
* ``insert(vectors)`` / ``delete(rows)`` evolve the index without a rebuild:
  inserted vectors are hashed with the *same* hash functions (the family's
  determinism contract) and their signature rows spliced into the store,
  while deletions tombstone rows and the band postings are lazily rebuilt
  once the tombstoned fraction exceeds the ``staleness_budget``;
* ``save(path)`` / ``load(path)`` round-trip the entire index — collection,
  hash-family state (drawn coefficients/projections *and* RNG stream
  position), signature store, band postings and tombstones — through a
  versioned ``.npz`` snapshot (:mod:`repro.serving.snapshot`), bit-identically:
  a loaded index answers every query exactly like the instance that saved it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.candidates.lsh_index import BandPostings, signatures_for_false_negative_rate
from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHParams
from repro.core.posteriors import make_posterior
from repro.hashing.base import get_hash_family
from repro.search.engine import as_collection
from repro.search.results import ScoredPair
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection
from repro.verification.base import cross_similarities_for_pairs

__all__ = ["QueryIndex"]

_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2


class QueryIndex:
    """An LSH index over a collection supporting threshold and top-k queries.

    Parameters
    ----------
    data:
        The collection to index (anything ``as_collection`` accepts).
    measure:
        ``"cosine"``, ``"jaccard"`` or ``"binary_cosine"``.
    threshold:
        Default similarity threshold for queries (also controls how many
        signatures the index builds for the target recall).
    false_negative_rate:
        Target probability of missing an object exactly at the threshold.
    signature_width:
        Hashes per signature band; defaults to the measure's standard width.
    verification:
        ``"bayes"`` (default) verifies candidates with BayesLSH pruning and
        returns similarity estimates; ``"exact"`` computes exact similarities
        for every candidate.
    epsilon, delta, gamma, k, max_hashes:
        BayesLSH parameters used when ``verification="bayes"``.
    seed:
        Seed for the hash family.
    staleness_budget:
        Maximum fraction of band-posting members that may be tombstoned by
        :meth:`delete` before the next query triggers a posting rebuild.
        ``0.0`` rebuilds on the first query after any deletion; ``1.0``
        effectively never rebuilds (tombstones are always filtered from
        results either way — the budget only bounds wasted probe work).
    """

    def __init__(
        self,
        data,
        measure: str = "cosine",
        threshold: float = 0.7,
        false_negative_rate: float = 0.03,
        signature_width: int | None = None,
        verification: str = "bayes",
        epsilon: float = 0.03,
        delta: float = 0.05,
        gamma: float = 0.03,
        k: int = 32,
        max_hashes: int = 2048,
        seed: int = 0,
        staleness_budget: float = 0.2,
    ):
        if verification not in ("bayes", "exact"):
            raise ValueError(f"verification must be 'bayes' or 'exact', got {verification!r}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        if not 0.0 <= staleness_budget <= 1.0:
            raise ValueError(
                f"staleness_budget must lie in [0, 1], got {staleness_budget}"
            )
        self._measure = get_measure(measure)
        self._collection = as_collection(data)
        self._prepared = self._measure.prepare(self._collection)
        self._threshold = float(threshold)
        self._false_negative_rate = float(false_negative_rate)
        self._verification = verification
        self._params = BayesLSHParams(
            threshold=threshold, epsilon=epsilon, delta=delta, gamma=gamma, k=k, max_hashes=max_hashes
        )
        self._seed = int(seed)
        self._staleness_budget = float(staleness_budget)
        self._family = get_hash_family(self._measure.lsh_family, self._prepared, seed=seed)

        if signature_width is None:
            signature_width = 8 if self._measure.lsh_family == "simhash" else 4
        self._signature_width = int(signature_width)
        collision = (
            self._threshold
            if self._measure.lsh_family == "minhash"
            else self._family.collision_similarity(self._threshold)
        )
        self._n_signatures = signatures_for_false_negative_rate(
            collision, self._signature_width, false_negative_rate
        )
        self._store = self._family.signatures(self._n_signatures * self._signature_width)

        self._deleted = np.zeros(self._prepared.n_vectors, dtype=bool)
        self._n_stale_postings = 0
        non_empty = np.flatnonzero(self._prepared.row_nnz > 0)
        self._postings = BandPostings.build(
            self._store, non_empty, self._n_signatures, self._signature_width
        )
        self._wire_tables()

    def _wire_tables(self) -> None:
        """(Re)build the BayesLSH decision machinery shared across queries.

        Deterministic functions of the parameters, so snapshots never need to
        serialise them.
        """
        params = self._params
        self._posterior = make_posterior(self._measure.name)
        self._min_matches = MinMatchesTable(
            self._posterior, self._threshold, params.epsilon, params.k, params.max_hashes
        )
        self._concentration = ConcentrationCache(
            self._posterior, params.delta, params.gamma
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_indexed(self) -> int:
        """Number of vector slots in the index (including tombstoned rows)."""
        return self._prepared.n_vectors

    @property
    def n_alive(self) -> int:
        """Number of indexed vectors that have not been deleted."""
        return int(self._prepared.n_vectors - self._deleted.sum())

    @property
    def n_deleted(self) -> int:
        """Number of tombstoned rows still occupying index slots."""
        return int(self._deleted.sum())

    @property
    def n_signatures(self) -> int:
        return self._n_signatures

    @property
    def signature_width(self) -> int:
        return self._signature_width

    @property
    def staleness_budget(self) -> float:
        return self._staleness_budget

    @property
    def n_stale_postings(self) -> int:
        """Tombstoned rows still present in the band postings."""
        return self._n_stale_postings

    @property
    def verification(self) -> str:
        return self._verification

    @property
    def threshold(self) -> float:
        return self._threshold

    # ------------------------------------------------------------------ #
    # query coercion
    # ------------------------------------------------------------------ #
    def _queries_collection(self, queries) -> VectorCollection:
        """Coerce a query batch into a prepared collection in the index's space."""
        collection = as_collection(queries, n_features=self._prepared.n_features)
        return self._measure.prepare(collection)

    def _single_query_batch(self, vector):
        """Wrap one query vector as a 1-row batch for the batched kernels."""
        if isinstance(vector, (set, frozenset, dict)):
            return [vector]
        if sp.issparse(vector):
            return vector
        if (
            isinstance(vector, (list, tuple))
            and vector
            and isinstance(vector[0], (int, np.integer))
        ):
            return [vector]
        return np.atleast_2d(np.asarray(vector, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # candidate generation
    # ------------------------------------------------------------------ #
    def _maybe_rebuild_postings(self) -> None:
        """Lazily rebuild the band postings once past the staleness budget."""
        if self._n_stale_postings == 0:
            return
        if self._n_stale_postings <= self._staleness_budget * self._postings.n_members:
            return
        alive_non_empty = np.flatnonzero((self._prepared.row_nnz > 0) & ~self._deleted)
        self._postings = BandPostings.build(
            self._store, alive_non_empty, self._n_signatures, self._signature_width
        )
        self._n_stale_postings = 0

    def _probe(self, query_prepared: VectorCollection):
        """Candidate ``(query row, collection row)`` pairs from the band index.

        Only non-empty query rows probe (empty vectors share no features with
        anything, and their hashes are degenerate), and tombstoned collection
        rows are filtered out.  Pairs come back deduplicated and sorted by
        ``(query row, collection row)``, together with the query batch's hash
        family (the whole batch is hashed in one kernel call; the Bayesian
        verifier extends the same family — and hence the same hash stream —
        past the banding hashes).
        """
        self._maybe_rebuild_postings()
        query_rows = np.flatnonzero(query_prepared.row_nnz > 0)
        if len(query_rows) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, None
        query_family = self._family.clone_for(query_prepared)
        # Probing only reads the banding hashes; verification lazily extends
        # the family when (and only when) the bayes path needs more.
        query_store = query_family.signatures(self._n_signatures * self._signature_width)
        positions, rows = self._postings.probe_many(
            query_store, query_rows, self._prepared.n_vectors
        )
        keep = ~self._deleted[rows]
        return query_rows[positions[keep]], rows[keep], query_family

    # ------------------------------------------------------------------ #
    # verification kernels
    # ------------------------------------------------------------------ #
    def _verify_bayes(
        self, query_family, query_rows: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Round-synchronous BayesLSH verification of (query, candidate) pairs.

        The batched twin of Algorithm 1's per-pair loop, with hash agreements
        counted across the query store (``query_family``'s, from the probe
        phase) and the collection store.  Every prune/emit decision depends
        only on the pair's own ``(m, n)``, so the outcome per pair is
        independent of which other pairs share the batch — the bit-identity
        contract between ``query_many`` and looped ``query``.

        Returns the pair estimates with NaN marking pruned pairs.
        """
        params = self._params
        n_pairs = len(query_rows)
        status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
        matches = np.zeros(n_pairs, dtype=np.int64)
        hashes_seen = np.zeros(n_pairs, dtype=np.int64)
        for round_index in range(params.n_rounds if n_pairs else 0):
            active = np.flatnonzero(status == _ACTIVE)
            if len(active) == 0:
                break
            n_prev = round_index * params.k
            n_now = n_prev + params.k
            # Lazy, round-synchronous hashing — exactly the core verifier's
            # pattern: rounds most pairs never reach are never hashed (the
            # families round requests up to their block size, so the whole
            # batch still extends in a handful of kernel calls).
            collection_store = self._family.signatures(n_now)
            query_store = query_family.signatures(n_now)
            matches[active] += query_store.count_matches_cross(
                query_rows[active], collection_store, rows[active], n_prev, n_now
            )
            hashes_seen[active] = n_now
            keep_mask = self._min_matches.passes_many(matches[active], n_now)
            status[active[~keep_mask]] = _PRUNED
            survivors = active[keep_mask]
            if len(survivors):
                concentrated = self._concentration.is_concentrated_many(
                    matches[survivors], n_now
                )
                status[survivors[concentrated]] = _EMITTED

        estimates = np.full(n_pairs, np.nan, dtype=np.float64)
        emitted = np.flatnonzero(status != _PRUNED)
        if len(emitted):
            estimates[emitted] = np.where(
                hashes_seen[emitted] > 0,
                self._posterior.map_estimate_many(matches[emitted], hashes_seen[emitted]),
                0.0,
            )
        return estimates

    def _cross_exact(
        self, query_prepared: VectorCollection, query_rows: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        return cross_similarities_for_pairs(
            query_prepared, self._prepared, self._measure, query_rows, rows
        )

    @staticmethod
    def _group_pairs(
        n_queries: int, query_rows: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> list[list[ScoredPair]]:
        """Split sorted (query, row, value) triples into per-query result lists."""
        results: list[list[ScoredPair]] = [[] for _ in range(n_queries)]
        for q, j, value in zip(query_rows.tolist(), rows.tolist(), values.tolist()):
            results[q].append(ScoredPair(-1, j, float(value)))
        return results

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_many(self, queries, threshold: float | None = None) -> list[list[ScoredPair]]:
        """Threshold queries for a whole batch at once.

        ``queries`` is anything ``as_collection`` accepts — typically a dense
        or CSR matrix with one query per row, or a list of token sets /
        feature dicts.  Returns one result list per query row, each exactly
        equal to ``self.query(row)``: the batch is hashed in one kernel call
        and verified through the same vectorised kernels, and every per-pair
        decision is independent of the rest of the batch.

        Result entries are :class:`ScoredPair` values whose ``i`` field is
        always -1 (the query is not part of the collection) and whose ``j``
        field is the index of the matching row.  Similarities are estimates
        under ``verification="bayes"`` and exact values under ``"exact"``;
        either way only pairs whose reported similarity exceeds the
        (per-call) threshold are returned.  Note that the Bayesian pruning
        tables stay tuned to the *index* threshold: overriding per call
        filters the estimates, but a threshold far below the index's cannot
        recover pairs the index-level pruning already discarded.
        """
        threshold = self._threshold if threshold is None else float(threshold)
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        query_prepared = self._queries_collection(queries)
        query_rows, rows, query_family = self._probe(query_prepared)
        if len(query_rows) == 0:
            return [[] for _ in range(query_prepared.n_vectors)]

        if self._verification == "exact":
            values = self._cross_exact(query_prepared, query_rows, rows)
            keep = values > threshold
        else:
            values = self._verify_bayes(query_family, query_rows, rows)
            keep = ~np.isnan(values) & (values > threshold)
        return self._group_pairs(
            query_prepared.n_vectors, query_rows[keep], rows[keep], values[keep]
        )

    def query(self, vector, threshold: float | None = None) -> list[ScoredPair]:
        """All indexed objects with similarity to ``vector`` above the threshold.

        Equivalent to ``query_many([vector])[0]`` — the singular entry point
        simply runs the batched kernels on a batch of one.
        """
        return self.query_many(self._single_query_batch(vector), threshold=threshold)[0]

    def top_k_many(
        self, queries, k: int = 10, floor_threshold: float = 0.1
    ) -> list[list[ScoredPair]]:
        """The ``k`` most similar indexed objects for each query in a batch.

        Returns one list per query row, each exactly equal to
        ``self.top_k(row, k, floor_threshold)``: candidates are collected from
        the band postings, verified exactly with the cross-collection kernel,
        and the best ``k`` above ``floor_threshold`` are returned in
        decreasing order of similarity.  With an LSH index tuned for
        ``threshold`` the result is approximate in the same sense as the
        underlying index: objects the index misses cannot be returned.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query_prepared = self._queries_collection(queries)
        query_rows, rows, _ = self._probe(query_prepared)
        n_queries = query_prepared.n_vectors
        if len(query_rows) == 0:
            return [[] for _ in range(n_queries)]
        values = self._cross_exact(query_prepared, query_rows, rows)
        grouped = self._group_pairs(n_queries, query_rows, rows, values)
        results: list[list[ScoredPair]] = []
        for scored in grouped:
            scored = [pair for pair in scored if pair.similarity > floor_threshold]
            scored.sort(key=lambda pair: pair.similarity, reverse=True)
            results.append(scored[:k])
        return results

    def top_k(self, vector, k: int = 10, floor_threshold: float = 0.1) -> list[ScoredPair]:
        """The ``k`` indexed objects most similar to ``vector``.

        Equivalent to ``top_k_many([vector], k, floor_threshold)[0]``.
        """
        return self.top_k_many(
            self._single_query_batch(vector), k=k, floor_threshold=floor_threshold
        )[0]

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def insert(self, data, ids=None) -> np.ndarray:
        """Append new vectors to the index without rebuilding it.

        The new vectors are hashed with the *same* hash functions as the
        existing corpus (the family's determinism contract guarantees hash
        function ``i`` agrees across collections), their signature rows are
        spliced into the store, and non-empty rows are added to the band
        postings immediately.  Returns the row indices assigned to the new
        vectors.

        ``ids`` optionally supplies external identifiers for the new rows
        (defaulting to their row indices).
        """
        new_collection = as_collection(data, n_features=self._collection.n_features)
        n_new = new_collection.n_vectors
        n_before = self._collection.n_vectors
        new_rows = np.arange(n_before, n_before + n_new, dtype=np.int64)
        if n_new == 0:
            return new_rows
        new_prepared = self._measure.prepare(new_collection)

        # Hash the fresh rows with a clone sharing the family's generator
        # state, then splice the resulting signature rows under the existing
        # ones.  The clone consumes no RNG (all needed hash functions are
        # already drawn), so the main family's stream is untouched.
        ingest_family = self._family.clone_for(new_prepared)
        new_store = ingest_family.signatures(self._store.n_hashes)
        if new_store.n_hashes != self._store.n_hashes:
            raise RuntimeError(
                f"ingest hashing produced {new_store.n_hashes} hashes, "
                f"index store holds {self._store.n_hashes}"
            )
        self._store.append_rows_from(new_store)

        if ids is None:
            merged_ids = np.concatenate([np.asarray(self._collection.ids), new_rows])
        else:
            ids = np.asarray(list(ids))
            if len(ids) != n_new:
                raise ValueError(f"ids has length {len(ids)} but {n_new} rows were inserted")
            merged_ids = np.concatenate([np.asarray(self._collection.ids), ids])
        self._collection = VectorCollection(
            sp.vstack([self._collection.matrix, new_collection.matrix], format="csr"),
            ids=merged_ids,
        )
        self._prepared = self._measure.prepare(self._collection)
        family = self._family.clone_for(self._prepared)
        family.attach_store(self._store)
        self._family = family

        self._deleted = np.concatenate([self._deleted, np.zeros(n_new, dtype=bool)])
        self._postings.add(self._store, new_rows[new_prepared.row_nnz > 0])
        return new_rows

    def delete(self, rows) -> int:
        """Tombstone indexed rows (by row index); returns how many were live.

        Deleted rows stay in the signature store and (until the staleness
        budget forces a posting rebuild) in the band postings, but are
        filtered from every query result immediately.  Deleting an already
        deleted row is a no-op.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64).ravel())
        if len(rows) and (rows[0] < 0 or rows[-1] >= self._prepared.n_vectors):
            raise IndexError(
                f"row indices must lie in [0, {self._prepared.n_vectors}), got "
                f"[{rows[0]}, {rows[-1]}]"
            )
        fresh = rows[~self._deleted[rows]]
        self._deleted[fresh] = True
        self._n_stale_postings += int(np.sum(self._prepared.row_nnz[fresh] > 0))
        return len(fresh)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_snapshot(
        cls,
        *,
        collection: VectorCollection,
        meta: dict,
        family_state: dict,
        store,
        deleted: np.ndarray,
        postings_members: np.ndarray,
    ) -> "QueryIndex":
        """Rewire an index from deserialised snapshot state.

        Only the state a snapshot carries is taken from the arguments; the
        prepared view, hash family object, band postings and BayesLSH
        decision tables are deterministic functions of it and are rebuilt
        here (see :mod:`repro.serving.snapshot` for the format).
        """
        index = cls.__new__(cls)
        index._measure = get_measure(meta["measure"])
        index._collection = collection
        index._prepared = index._measure.prepare(collection)
        index._threshold = float(meta["threshold"])
        index._false_negative_rate = float(meta["false_negative_rate"])
        index._verification = meta["verification"]
        index._params = BayesLSHParams(
            threshold=float(meta["threshold"]),
            epsilon=float(meta["epsilon"]),
            delta=float(meta["delta"]),
            gamma=float(meta["gamma"]),
            k=int(meta["k"]),
            max_hashes=int(meta["max_hashes"]),
        )
        index._seed = int(meta["seed"])
        index._staleness_budget = float(meta["staleness_budget"])
        index._signature_width = int(meta["signature_width"])
        index._n_signatures = int(meta["n_signatures"])
        if len(deleted) != index._prepared.n_vectors:
            raise ValueError(
                f"tombstone mask covers {len(deleted)} rows, collection has "
                f"{index._prepared.n_vectors}"
            )
        index._family = get_hash_family(
            index._measure.lsh_family,
            index._prepared,
            seed=index._seed,
            **meta.get("family_kwargs", {}),
        )
        index._family.restore_state(family_state)
        index._family.attach_store(store)
        index._store = store
        index._deleted = deleted
        index._n_stale_postings = int(meta["n_stale_postings"])
        index._postings = BandPostings.build(
            store, postings_members, index._n_signatures, index._signature_width
        )
        index._wire_tables()
        return index

    def save(self, path):
        """Write a versioned snapshot of the index to ``path`` (``.npz``).

        See :mod:`repro.serving.snapshot` for the format; loading the file
        with :meth:`load` reproduces this index bit for bit — including the
        hash family's RNG position, so even hash functions drawn *after* the
        round trip are identical on both sides.
        """
        from repro.serving.snapshot import save_query_index

        return save_query_index(self, path)

    @classmethod
    def load(cls, path) -> "QueryIndex":
        """Load an index previously written by :meth:`save`."""
        from repro.serving.snapshot import load_query_index

        return load_query_index(path)
