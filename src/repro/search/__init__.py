"""End-to-end all-pairs similarity search pipelines.

A pipeline is a candidate generator combined with a candidate verifier.  The
paper's evaluation compares eight of them (AllPairs, AP+BayesLSH,
AP+BayesLSH-Lite, LSH, LSH Approx, LSH+BayesLSH, LSH+BayesLSH-Lite and
PPJoin+); :func:`repro.search.pipelines.make_pipeline` builds any of them by
name, and :func:`repro.search.engine.all_pairs_similarity` is the one-call
convenience entry point.
"""

from repro.search.engine import SearchEngine, all_pairs_similarity
from repro.search.pipelines import PIPELINES, make_pipeline, pipelines_for_measure
from repro.search.query import QueryIndex
from repro.search.results import ScoredPair, SearchResult

__all__ = [
    "PIPELINES",
    "QueryIndex",
    "ScoredPair",
    "SearchEngine",
    "SearchResult",
    "all_pairs_similarity",
    "make_pipeline",
    "pipelines_for_measure",
]
