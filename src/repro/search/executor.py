"""Sharded, block-streamed execution of the candidate/verify pipeline.

One shared-memory, round-synchronous worker pool serves **two call sites**:

* the offline all-pairs engine (:class:`StreamExecutor`, used by
  :meth:`SearchEngine.run` when ``block_size``/``n_workers`` is set), and
* the online serving layer (:class:`ServingPool`, used by
  :meth:`QueryIndex.query_many` / :meth:`QueryIndex.top_k_many` when their
  ``n_workers`` knob is set), which shards band-key probing, the round-lazy
  cross-store BayesLSH pruning and exact/estimate ranking across forked
  workers.

The serial :meth:`SearchEngine.run` path materialises every candidate pair in
one array and verifies it on one core.  This module provides the streaming
alternative the engine switches to when ``block_size`` or ``n_workers`` is
set:

* **Streamed generation** — candidate generators yield raw pair blocks
  (:meth:`CandidateGenerator.generate_blocks`); the executor canonicalises
  and deduplicates them *incrementally* against a compact sorted key set
  (8 bytes per unique pair), so the peak pair-array footprint is bounded by
  the block size plus the deduplicated key set instead of the raw collision
  count (for LSH the raw count is often many times the unique count).
* **Blocked verification** — the deduplicated pairs are verified in
  ``block_size`` slices (:class:`PairBlockSource`), so the per-pair
  verification state (status/matches/gather scratch) is bounded by the block
  size.  Per-block outputs are combined with
  :meth:`~repro.core.bayeslsh.VerificationOutput.merge`.
* **Multicore round-synchronous verification** — with ``n_workers > 1`` a
  pool of forked worker processes verifies each block's pairs in contiguous
  shards.  The *parent* extends the shared hash family round by round (so the
  RNG stream consumption is identical to the serial path) and exports the
  fresh signature columns into POSIX shared memory; workers gather hash
  columns straight out of the shared segments without ever pickling the
  signature store.  Every prune/emit decision depends only on the pair's own
  ``(m, n)`` counts, so sharding pairs across processes is semantics-free:
  pairs, estimates, counters and the per-round trace are bit-identical to
  the serial path (enforced by ``tests/property/test_execution_invariance``).

Determinism contract
--------------------
For every pipeline, every ``block_size`` and every ``n_workers``:

* the output pair set, its order, and every estimate are bit-identical to the
  serial path (workers run the same NumPy/scipy kernels on the same inputs);
* ``n_candidates`` / ``n_pruned`` / ``hash_comparisons`` /
  ``exact_computations`` and the per-round trace are identical (merged
  round-by-round across blocks and shards);
* hash families are extended by the parent only, in the same order as the
  serial path, so a given ``(seed, hash index)`` yields the same hash
  function everywhere.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.bayeslsh import VerificationOutput
from repro.hashing.signatures import BitSignatures, _tile_rows, count_packed_matches

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "PairBlockSource",
    "ServingPool",
    "ServingTask",
    "StreamExecutor",
]

#: default number of candidate pairs per verification block
DEFAULT_BLOCK_SIZE = 65536

_WORD_BITS = 32


# --------------------------------------------------------------------- #
# incremental pair deduplication
# --------------------------------------------------------------------- #
class _PairKeyAccumulator:
    """Incrementally deduplicated candidate pairs as sorted ``int64`` keys.

    A pair ``(i, j)`` with ``i < j`` is encoded as ``i * n_vectors + j``;
    keys sort in the same lexicographic ``(i, j)`` order that
    :meth:`CandidateSet.from_arrays` produces, so decoding the final key
    array yields exactly the serial candidate arrays.  Incoming blocks are
    buffered and merged amortised (when the pending volume reaches the
    consolidated size), keeping the total cost at ``O(N log N)`` over any
    number of blocks.
    """

    def __init__(self, n_vectors: int):
        if n_vectors >= 1 << 31:
            raise NotImplementedError(
                "streamed deduplication supports up to 2**31 - 1 vectors "
                "(pair keys must fit in int64); use the monolithic path"
            )
        self._span = int(n_vectors)
        self._sorted = np.zeros(0, dtype=np.int64)
        self._pending: list[np.ndarray] = []
        self._pending_total = 0

    def add(self, left: np.ndarray, right: np.ndarray) -> None:
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        keep = left != right
        low = np.minimum(left[keep], right[keep])
        high = np.maximum(left[keep], right[keep])
        if not len(low):
            return
        self._pending.append(np.unique(low * self._span + high))
        self._pending_total += len(self._pending[-1])
        if self._pending_total >= max(len(self._sorted), 1 << 16):
            self._consolidate()

    def _consolidate(self) -> None:
        if not self._pending:
            return
        self._sorted = np.unique(np.concatenate([self._sorted, *self._pending]))
        self._pending = []
        self._pending_total = 0

    def finalize(self) -> np.ndarray:
        self._consolidate()
        return self._sorted


class PairBlockSource:
    """Deduplicated candidate pairs, readable in contiguous sorted blocks.

    Also acts as a lazy ``Sequence[(i, j)]`` (``len`` / indexing), which is
    what the Jaccard prior fitting samples from — the sampled indices and
    hence the fitted prior are identical to the serial path's, which samples
    from the same pairs in the same sorted order.
    """

    def __init__(self, keys: np.ndarray, n_vectors: int, block_size: int):
        self._keys = keys
        self._span = int(n_vectors)
        self._block_size = int(block_size)

    @property
    def block_size(self) -> int:
        """Pairs per verification slice (the executor's memory bound)."""
        return self._block_size

    def __len__(self) -> int:
        return len(self._keys)

    def __getitem__(self, index: int) -> tuple[int, int]:
        key = int(self._keys[index])
        return key // self._span, key % self._span

    def all_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The full (sorted, deduplicated) pair arrays."""
        return self._keys // self._span, self._keys % self._span

    def blocks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(left, right)`` slices of at most ``block_size`` pairs."""
        for start in range(0, len(self._keys), self._block_size):
            chunk = self._keys[start : start + self._block_size]
            yield chunk // self._span, chunk % self._span


# --------------------------------------------------------------------- #
# shared-memory signature export
# --------------------------------------------------------------------- #
class _SegmentTable:
    """Worker-side registry of shared-memory signature segments.

    Counts hash agreements straight from the shared buffers with the same
    integer kernels the in-process stores use (`count_packed_matches` for
    packed bits, gather + ``np.equal`` + row sum for integer signatures), so
    worker counts are bit-identical to store counts.
    """

    def __init__(self):
        self._segments: list[dict] = []
        self._handles: list = []  # keep SharedMemory objects alive

    def attach(self, descriptor: dict) -> None:
        from multiprocessing import shared_memory

        # The worker is forked, so it shares the parent's resource-tracker
        # process: attaching re-registers the same name (a set, no-op) and
        # the parent's unlink() deregisters it exactly once.
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        array = np.ndarray(
            tuple(descriptor["shape"]), dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf
        )
        self._handles.append(shm)
        self._segments.append(
            {
                "hash_start": descriptor["hash_start"],
                "hash_end": descriptor["hash_end"],
                "bits": descriptor["bits"],
                "array": array,
            }
        )

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        counts = np.zeros(len(left), dtype=np.int64)
        if end <= start:
            return counts
        covered = start
        for segment in self._segments:
            lo = max(covered, segment["hash_start"])
            hi = min(end, segment["hash_end"])
            if hi <= lo or lo != covered:
                continue
            array = segment["array"]
            if segment["bits"]:
                word_base = segment["hash_start"] // _WORD_BITS
                word_lo = lo // _WORD_BITS - word_base
                word_hi = -(-hi // _WORD_BITS) - word_base
                words = np.ascontiguousarray(array[:, word_lo:word_hi])
                counts += count_packed_matches(
                    words[left],
                    words[right],
                    lo - (word_lo + word_base) * _WORD_BITS,
                    hi - lo,
                )
            else:
                columns = np.ascontiguousarray(
                    array[:, lo - segment["hash_start"] : hi - segment["hash_start"]]
                )
                equal = np.equal(columns[left], columns[right])
                counts += equal.sum(axis=1, dtype=np.int64)
            covered = hi
            if covered >= end:
                break
        if covered < end:
            raise RuntimeError(
                f"shared segments cover hashes up to {covered}, needed {end}"
            )
        return counts


class _SignatureExporter:
    """Parent-side publication of signature columns into shared memory.

    The parent extends the hash family (keeping RNG streams identical to the
    serial path) and copies each fresh column block into a new shared-memory
    segment that every worker attaches on notification.

    ``key`` names the store the columns belong to (the serving pool exports
    one stream per collection segment plus one for the query batch; the
    all-pairs pool exports a single keyless stream), and ``base`` is the
    column count the workers already inherited through the fork — publication
    starts there instead of at zero.
    """

    def __init__(self, pool: "_WorkerPool", produces_bits: bool, key=None, base: int = 0):
        self._pool = pool
        self._bits = bool(produces_bits)
        self._key = key
        self._published = int(base)
        if self._bits and self._published % _WORD_BITS:
            raise ValueError(
                f"bit-store publication base must be word-aligned, got {base}"
            )

    def ensure(self, store, n_now: int) -> None:
        """Publish columns so workers can count hashes ``[0, n_now)``."""
        if n_now <= self._published:
            return
        from multiprocessing import shared_memory

        if self._bits:
            # Publish whole words; _published is always word-aligned so
            # consecutive segments cover disjoint hash ranges.
            word_start = self._published // _WORD_BITS
            word_end = -(-n_now // _WORD_BITS)
            block = store.word_block(word_start, word_end)
            hash_start = word_start * _WORD_BITS
            hash_end = word_end * _WORD_BITS
        else:
            block = store.column_block(self._published, n_now)
            hash_start = self._published
            hash_end = n_now
        shm = shared_memory.SharedMemory(create=True, size=max(block.nbytes, 1))
        view = np.ndarray(block.shape, dtype=block.dtype, buffer=shm.buf)
        view[:] = block
        descriptor = {
            "name": shm.name,
            "shape": block.shape,
            "dtype": block.dtype.str,
            "hash_start": hash_start,
            "hash_end": hash_end,
            "bits": self._bits,
        }
        if self._key is not None:
            descriptor["key"] = self._key
        self._pool.register_segment(shm, descriptor)
        self._published = hash_end


# --------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------- #
_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2


def _worker_main(worker_id: int, verifier, task_queue, result_queue) -> None:
    """Worker loop: verifies pair shards round-synchronously.

    The process is forked, so ``verifier`` (with its prepared collection,
    measure and parameters) is inherited by reference; only small control
    messages and shard index arrays travel through the queues.  Decision
    tables are rebuilt locally from the broadcast posterior/params — they are
    deterministic functions of those inputs, so every worker's tables agree
    with the parent's.
    """
    segments = _SegmentTable()
    mode = None
    posterior = None
    params = None
    min_matches = None
    concentration = None
    shard: dict | None = None
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        try:
            if tag == "segment":
                segments.attach(message[1])
                continue  # broadcast; no reply
            if tag == "setup":
                mode, blob = message[1], message[2]
                posterior, params = pickle.loads(blob)
                from repro.core.concentration_cache import ConcentrationCache
                from repro.core.min_matches import MinMatchesTable

                max_hashes = params.max_hashes if mode == "bayes" else params.h
                min_matches = MinMatchesTable(
                    posterior,
                    threshold=params.threshold,
                    epsilon=params.epsilon,
                    k=params.k,
                    max_hashes=max_hashes,
                )
                concentration = (
                    ConcentrationCache(posterior, delta=params.delta, gamma=params.gamma)
                    if mode == "bayes"
                    else None
                )
                continue  # broadcast; no reply
            if tag == "begin":
                left, right = message[1], message[2]
                shard = {
                    "left": left,
                    "right": right,
                    "status": np.full(len(left), _ACTIVE, dtype=np.int8),
                    "matches": np.zeros(len(left), dtype=np.int64),
                    "hashes_seen": np.zeros(len(left), dtype=np.int64),
                }
                result_queue.put(("ok", worker_id, len(left)))
            elif tag == "round":
                n_prev, n_now = message[1], message[2]
                status = shard["status"]
                matches = shard["matches"]
                active = np.flatnonzero(status == _ACTIVE)
                if len(active):
                    new_matches = segments.count_matches_many(
                        shard["left"][active], shard["right"][active], n_prev, n_now
                    )
                    matches[active] += new_matches
                    shard["hashes_seen"][active] = n_now
                    keep_mask = min_matches.passes_many(matches[active], n_now)
                    status[active[~keep_mask]] = _PRUNED
                    survivors = active[keep_mask]
                    if concentration is not None and len(survivors):
                        concentrated = concentration.is_concentrated_many(
                            matches[survivors], n_now
                        )
                        status[survivors[concentrated]] = _EMITTED
                n_alive = int(np.sum(status != _PRUNED))
                n_active = int(np.sum(status == _ACTIVE))
                result_queue.put(("ok", worker_id, (len(active), n_alive, n_active)))
            elif tag == "finish":
                status = shard["status"]
                if mode == "bayes":
                    mask = status != _PRUNED
                    out_matches = shard["matches"][mask]
                    out_hashes = shard["hashes_seen"][mask]
                    if len(out_matches):
                        estimates = np.where(
                            out_hashes > 0,
                            posterior.map_estimate_many(out_matches, out_hashes),
                            0.0,
                        ).astype(np.float64, copy=False)
                    else:
                        estimates = np.zeros(0, dtype=np.float64)
                    result_queue.put(("ok", worker_id, (mask, estimates)))
                else:  # lite: exact-verify the survivors
                    mask = status != _PRUNED
                    survivors = np.flatnonzero(mask)
                    exact_values = np.array(
                        [
                            verifier.exact_similarity(
                                int(shard["left"][idx]), int(shard["right"][idx])
                            )
                            for idx in survivors
                        ],
                        dtype=np.float64,
                    )
                    result_queue.put(("ok", worker_id, (mask, exact_values)))
                shard = None
            elif tag == "exact":
                from repro.verification.base import exact_similarities_for_pairs

                left, right = message[1], message[2]
                values = exact_similarities_for_pairs(
                    verifier.prepared, verifier.measure, left, right
                )
                result_queue.put(("ok", worker_id, values))
            elif tag == "count":
                left, right, start, end = message[1], message[2], message[3], message[4]
                values = segments.count_matches_many(left, right, start, end)
                result_queue.put(("ok", worker_id, values))
            else:
                result_queue.put(("error", worker_id, f"unknown task {tag!r}"))
        except Exception:
            result_queue.put(("error", worker_id, traceback.format_exc()))


# --------------------------------------------------------------------- #
# worker pool
# --------------------------------------------------------------------- #
class _WorkerPool:
    """A pool of forked workers driven round-synchronously.

    Generic process/queue plumbing shared by the two call sites: ``target``
    is the worker loop (:func:`_worker_main` for the all-pairs engine,
    :func:`_serving_worker_main` for the serving layer) and ``payload`` is
    whatever state that loop should inherit through the fork (never pickled —
    the pool always uses the ``fork`` start method).
    """

    def __init__(self, n_workers: int, target, payload):
        try:
            # Start the shared-memory resource tracker *before* forking so
            # every worker inherits (and reuses) the parent's tracker instead
            # of spawning its own, which would try to clean the parent's
            # segments up again at worker exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        context = multiprocessing.get_context("fork")
        self._n_workers = int(n_workers)
        self._result_queue = context.Queue()
        self._task_queues = [context.Queue() for _ in range(self._n_workers)]
        self._segments: list = []
        self._processes = [
            context.Process(
                target=target,
                args=(wid, payload, self._task_queues[wid], self._result_queue),
                daemon=True,
            )
            for wid in range(self._n_workers)
        ]
        for process in self._processes:
            process.start()
        self._shard_workers: list[int] = []

    @property
    def n_workers(self) -> int:
        return self._n_workers

    # ----------------------------- plumbing ----------------------------- #
    def _broadcast(self, message) -> None:
        for queue in self._task_queues:
            queue.put(message)

    def _collect(self, worker_ids) -> dict:
        """Gather one reply per worker id; raise on any worker error.

        Polls with a timeout and checks worker liveness so a worker killed
        mid-task (OOM, native crash) surfaces as a RuntimeError instead of a
        parent that blocks forever on the result queue.
        """
        import queue as queue_module

        replies: dict[int, object] = {}
        pending = set(worker_ids)
        while pending:
            try:
                status, wid, payload = self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [wid for wid in pending if not self._processes[wid].is_alive()]
                if dead:
                    raise RuntimeError(
                        f"verification worker(s) {dead} died without replying "
                        f"(exit codes: {[self._processes[w].exitcode for w in dead]})"
                    )
                continue
            if status == "error":
                raise RuntimeError(f"verification worker {wid} failed:\n{payload}")
            replies[wid] = payload
            pending.discard(wid)
        return replies

    def register_segment(self, shm, descriptor: dict) -> None:
        """Publish a shared-memory signature segment to every worker."""
        self._segments.append(shm)
        self._broadcast(("segment", descriptor))

    def scatter(self, tag: str, arrays: tuple) -> list[tuple[int, int]]:
        """Shard parallel arrays contiguously and enqueue one task per shard.

        Cuts balanced contiguous slices across the workers (empty slices are
        skipped) and enqueues ``(tag, *slices)`` on each recipient's queue.
        Returns the issued ``(worker id, slice start)`` pairs, in worker
        order — pass them to :meth:`gather` to collect the replies and to
        re-base slice-relative results.
        """
        bounds = np.linspace(0, len(arrays[0]), self._n_workers + 1).astype(np.int64)
        issued: list[tuple[int, int]] = []
        for wid in range(self._n_workers):
            lo, hi = int(bounds[wid]), int(bounds[wid + 1])
            if hi > lo:
                self._task_queues[wid].put((tag, *(array[lo:hi] for array in arrays)))
                issued.append((wid, lo))
        return issued

    def gather(self, issued: list[tuple[int, int]]) -> dict:
        """Collect one reply per :meth:`scatter`-issued shard (worker id keyed)."""
        return self._collect([wid for wid, _ in issued])

    def send(self, worker_ids, message) -> None:
        """Enqueue the same message on each listed worker's queue."""
        for wid in worker_ids:
            self._task_queues[wid].put(message)

    def collect(self, worker_ids) -> dict:
        """Gather one reply per listed worker id (raises on worker error)."""
        return self._collect(worker_ids)

    def setup(self, mode: str, posterior, params) -> None:
        self._broadcast(("setup", mode, pickle.dumps((posterior, params))))

    # --------------------------- block protocol -------------------------- #
    def _shards(self, left: np.ndarray, right: np.ndarray):
        bounds = np.linspace(0, len(left), self._n_workers + 1).astype(np.int64)
        shards = []
        for wid in range(self._n_workers):
            lo, hi = int(bounds[wid]), int(bounds[wid + 1])
            if hi > lo:
                shards.append((wid, left[lo:hi], right[lo:hi]))
        return shards

    def begin_block(self, left: np.ndarray, right: np.ndarray) -> None:
        shards = self._shards(left, right)
        self._shard_workers = [wid for wid, _, _ in shards]
        for wid, shard_left, shard_right in shards:
            self._task_queues[wid].put(("begin", shard_left, shard_right))
        self._collect(self._shard_workers)

    def round(self, n_prev: int, n_now: int) -> tuple[int, int, int]:
        """Run one hash round on every shard; returns summed counters."""
        for wid in self._shard_workers:
            self._task_queues[wid].put(("round", n_prev, n_now))
        replies = self._collect(self._shard_workers)
        processed = sum(replies[wid][0] for wid in self._shard_workers)
        alive = sum(replies[wid][1] for wid in self._shard_workers)
        active = sum(replies[wid][2] for wid in self._shard_workers)
        return processed, alive, active

    def finish_block(self) -> list:
        """Collect per-shard results in shard order."""
        for wid in self._shard_workers:
            self._task_queues[wid].put(("finish",))
        replies = self._collect(self._shard_workers)
        return [replies[wid] for wid in self._shard_workers]

    def map_exact(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        shards = self._shards(left, right)
        for wid, shard_left, shard_right in shards:
            self._task_queues[wid].put(("exact", shard_left, shard_right))
        replies = self._collect([wid for wid, _, _ in shards])
        return np.concatenate([replies[wid] for wid, _, _ in shards])

    def map_count(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        shards = self._shards(left, right)
        for wid, shard_left, shard_right in shards:
            self._task_queues[wid].put(("count", shard_left, shard_right, start, end))
        replies = self._collect([wid for wid, _, _ in shards])
        return np.concatenate([replies[wid] for wid, _, _ in shards])

    def shutdown(self) -> None:
        for queue in self._task_queues:
            try:
                queue.put(("stop",))
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        self._segments = []


# --------------------------------------------------------------------- #
# round-synchronous block verification (shared by BayesLSH / Lite)
# --------------------------------------------------------------------- #
def run_round_protocol(
    pool: _WorkerPool,
    family,
    params,
    mode: str,
    posterior,
    source: PairBlockSource,
    threshold: float,
) -> VerificationOutput:
    """Drive the workers through the round-synchronous verification of
    every block of ``source``.

    The parent owns hash generation: each round it lazily extends ``family``
    (identical RNG stream consumption to the serial path) and publishes the
    fresh columns to shared memory before broadcasting the round.
    """
    pool.setup(mode, posterior, params)
    exporter = _SignatureExporter(pool, family.produces_bits)
    n_rounds = params.n_rounds
    outputs: list[VerificationOutput] = []
    for left, right in source.blocks():
        pool.begin_block(left, right)
        trace: list[tuple[int, int]] = []
        hash_comparisons = 0
        n_active = len(left)
        for round_index in range(n_rounds if len(left) else 0):
            if n_active == 0:
                break
            n_prev = round_index * params.k
            n_now = n_prev + params.k
            store = family.signatures(n_now)
            exporter.ensure(store, n_now)
            processed, alive, n_active = pool.round(n_prev, n_now)
            hash_comparisons += processed * params.k
            trace.append((n_now, alive))
        shard_results = pool.finish_block()
        masks = [mask for mask, _ in shard_results]
        mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
        values = (
            np.concatenate([vals for _, vals in shard_results])
            if shard_results
            else np.zeros(0, dtype=np.float64)
        )
        n_pruned = int(len(left) - mask.sum())
        if mode == "bayes":
            outputs.append(
                VerificationOutput(
                    left=left[mask],
                    right=right[mask],
                    estimates=values,
                    n_candidates=len(left),
                    n_pruned=n_pruned,
                    trace=trace,
                    hash_comparisons=hash_comparisons,
                )
            )
        else:  # lite: threshold the exact survivor similarities
            survivors_left = left[mask]
            survivors_right = right[mask]
            above = values > threshold
            outputs.append(
                VerificationOutput(
                    left=survivors_left[above],
                    right=survivors_right[above],
                    estimates=values[above],
                    n_candidates=len(left),
                    n_pruned=n_pruned,
                    trace=trace,
                    hash_comparisons=hash_comparisons,
                    exact_computations=int(mask.sum()),
                )
            )
    return VerificationOutput.merge(outputs)


# --------------------------------------------------------------------- #
# parallel serving (QueryIndex.query_many / top_k_many)
# --------------------------------------------------------------------- #
@dataclass
class ServingTask:
    """Everything a serving worker inherits through the fork.

    Built by :class:`~repro.search.query.QueryIndex` per batched call, after
    the query batch has been hashed to the banding width: the workers read
    the postings, the per-segment stores and the query store from their
    forked copy of this object, and only signature columns materialised
    *after* the fork travel through POSIX shared memory.  Nothing here is
    ever pickled.
    """

    #: the index's :class:`~repro.serving.segments.SegmentedCollection`
    segments: object
    #: the index's band postings (already rebuilt if the staleness budget required it)
    postings: object
    #: the prepared query batch (measure-specific view)
    query_prepared: object
    #: the query batch's signature store, materialised to the banding width
    query_store: object
    #: BayesLSH decision machinery shared with the serial path
    min_matches: object
    concentration: object
    posterior: object
    params: object
    #: total collection rows (probe-result encoding span)
    n_vectors: int


#: key under which the query batch's signature columns are published
_QUERY_KEY = "q"


class _ColumnSource:
    """Worker-side read access to one signature store across the fork.

    Columns materialised before the fork are read from the worker's inherited
    copy of the store; columns the parent materialised *after* the fork
    arrive as shared-memory chunks (attached on broadcast).  The inherited
    chunks and the published ones tile the hash axis contiguously, and every
    chunk boundary is word-aligned, so any requested sub-range falls
    entirely within one piece once split at the piece boundaries.

    The inherited layout is captured once as a :meth:`chunk_map` snapshot —
    after that the worker never calls a store method, so it can never block
    on a lock the fork captured in the locked state (another reader thread
    of the parent may have been holding a store lock at fork time, and no
    thread exists in the child to release it).
    """

    def __init__(self, store):
        self._bits = isinstance(store, BitSignatures)
        base = int(store.n_hashes)  # fork-time width
        if self._bits and base % _WORD_BITS:
            raise RuntimeError(
                f"fork-time bit store width {base} is not word-aligned"
            )
        #: (hash_start, hash_end, array) pieces: fork-inherited chunks first,
        #: shared-memory chunks appended as the parent publishes them
        self._pieces: list[tuple[int, int, np.ndarray]] = list(store.chunk_map())
        self._handles: list = []  # keep SharedMemory objects alive

    @property
    def bits(self) -> bool:
        return self._bits

    def attach(self, descriptor: dict) -> None:
        from multiprocessing import shared_memory

        # Forked workers share the parent's resource tracker; attaching
        # re-registers the same name (a set, no-op) and the parent's unlink()
        # deregisters it exactly once.
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        array = np.ndarray(
            tuple(descriptor["shape"]), dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf
        )
        self._handles.append(shm)
        self._pieces.append((descriptor["hash_start"], descriptor["hash_end"], array))

    def boundaries(self, start: int, end: int) -> list[int]:
        """Piece boundaries intersecting ``[start, end)`` (sorted, inclusive ends)."""
        points = {start, end}
        for lo, hi, _ in self._pieces:
            if start < lo < end:
                points.add(lo)
            if start < hi < end:
                points.add(hi)
        return sorted(points)

    def word_block(self, start: int, end: int) -> np.ndarray:
        """Packed words covering bit range ``[start, end)`` of one piece."""
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        for lo, hi, array in self._pieces:
            if lo <= start and end <= hi:
                base_word = lo // _WORD_BITS
                return array[:, word_start - base_word : word_end - base_word]
        raise RuntimeError(
            f"bit range [{start}, {end}) is neither fork-inherited nor published "
            f"to shared memory"
        )

    def column_block(self, start: int, end: int) -> np.ndarray:
        """Integer signature columns ``[start, end)`` of one piece."""
        for lo, hi, array in self._pieces:
            if lo <= start and end <= hi:
                return array[:, start - lo : end - lo]
        raise RuntimeError(
            f"hash range [{start}, {end}) is neither fork-inherited nor published "
            f"to shared memory"
        )


def _cross_window_counts(
    query_source: _ColumnSource,
    segment_source: _ColumnSource,
    query_rows: np.ndarray,
    local_rows: np.ndarray,
    start: int,
    end: int,
) -> np.ndarray:
    """Hash agreements between query rows and segment rows over ``[start, end)``.

    The worker-side twin of
    :meth:`~repro.hashing.signatures.SignatureStore.count_matches_cross`:
    agreement counts are additive over disjoint hash sub-ranges, so the
    window is split at the two sources' piece boundaries and each piece is
    counted with the same integer kernels the in-process stores use
    (:func:`count_packed_matches` for packed bits, gather + ``==`` + row sum
    for integer signatures) — worker counts are bit-identical to store
    counts.  Pairs are processed in the same L2-sized tiles as the store
    kernels (tiling only the pair axis is value-preserving), so a large
    shard — the regime ``n_workers`` targets — never round-trips an
    ``n_pairs x span`` gather through DRAM.
    """
    n_pairs = len(query_rows)
    counts = np.zeros(n_pairs, dtype=np.int64)
    if end <= start:
        return counts
    points = sorted(
        set(query_source.boundaries(start, end))
        | set(segment_source.boundaries(start, end))
    )
    if query_source.bits:
        span_bytes = (-(-(end - start) // _WORD_BITS) + 1) * 4
    else:
        span_bytes = (end - start) * 4  # int32 signatures (int64 halves the tile)
    tile = _tile_rows(span_bytes)
    for t0 in range(0, n_pairs, tile):
        t1 = min(t0 + tile, n_pairs)
        query_tile = query_rows[t0:t1]
        local_tile = local_rows[t0:t1]
        for lo, hi in zip(points[:-1], points[1:]):
            if query_source.bits:
                query_words = query_source.word_block(lo, hi)
                segment_words = segment_source.word_block(lo, hi)
                counts[t0:t1] += count_packed_matches(
                    query_words[query_tile],
                    segment_words[local_tile],
                    lo - (lo // _WORD_BITS) * _WORD_BITS,
                    hi - lo,
                )
            else:
                query_columns = query_source.column_block(lo, hi)
                segment_columns = segment_source.column_block(lo, hi)
                equal = query_columns[query_tile] == segment_columns[local_tile]
                counts[t0:t1] += equal.sum(axis=1, dtype=np.int64)
    return counts


def _serving_worker_main(worker_id: int, task: ServingTask, task_queue, result_queue) -> None:
    """Serving worker loop: probes, verifies and ranks pair shards.

    The process is forked, so the whole :class:`ServingTask` (postings,
    per-segment stores, prepared views, decision tables) is inherited by
    reference; only small control messages and shard index arrays travel
    through the queues.  Every per-pair decision depends only on the pair's
    own ``(m, n)`` counts, and every kernel is row-local, so sharding is
    semantics-free — outputs are bit-identical to the serial batch path.
    """
    sources: dict = {}

    def source_for(key) -> _ColumnSource:
        source = sources.get(key)
        if source is None:
            if key == _QUERY_KEY:
                store = task.query_store
            else:
                store = task.segments.segments[key].store
            source = _ColumnSource(store)
            sources[key] = source
        return source

    shard: dict | None = None
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        try:
            if tag == "segment":
                source_for(message[1]["key"]).attach(message[1])
                continue  # broadcast; no reply
            if tag == "probe":
                query_rows = message[1]
                positions, rows = task.postings.probe_many(
                    task.query_store, query_rows, task.n_vectors
                )
                result_queue.put(("ok", worker_id, (positions, rows)))
            elif tag == "verify":
                query_rows, segment_ids, local_rows = message[1], message[2], message[3]
                shard = {
                    "query_rows": query_rows,
                    "segment_ids": segment_ids,
                    "local_rows": local_rows,
                    "status": np.full(len(query_rows), _ACTIVE, dtype=np.int8),
                    "matches": np.zeros(len(query_rows), dtype=np.int64),
                    "hashes_seen": np.zeros(len(query_rows), dtype=np.int64),
                }
                result_queue.put(("ok", worker_id, len(query_rows)))
            elif tag == "round":
                n_prev, n_now = message[1], message[2]
                status = shard["status"]
                matches = shard["matches"]
                active = np.flatnonzero(status == _ACTIVE)
                if len(active):
                    # Group the active pairs by owning segment (same stable
                    # grouping as SegmentedCollection._grouped) and count
                    # each group against its segment's column source.
                    query_source = source_for(_QUERY_KEY)
                    segment_ids = shard["segment_ids"][active]
                    order = np.argsort(segment_ids, kind="stable")
                    boundaries = np.flatnonzero(np.diff(segment_ids[order])) + 1
                    for positions in np.split(order, boundaries):
                        pairs = active[positions]
                        matches[pairs] += _cross_window_counts(
                            query_source,
                            source_for(int(segment_ids[positions[0]])),
                            shard["query_rows"][pairs],
                            shard["local_rows"][pairs],
                            n_prev,
                            n_now,
                        )
                    shard["hashes_seen"][active] = n_now
                    keep_mask = task.min_matches.passes_many(matches[active], n_now)
                    status[active[~keep_mask]] = _PRUNED
                    survivors = active[keep_mask]
                    if len(survivors):
                        concentrated = task.concentration.is_concentrated_many(
                            matches[survivors], n_now
                        )
                        status[survivors[concentrated]] = _EMITTED
                still_active = status == _ACTIVE
                active_segments = np.unique(shard["segment_ids"][still_active])
                result_queue.put(
                    ("ok", worker_id, (int(still_active.sum()), active_segments.tolist()))
                )
            elif tag == "estimates":
                status = shard["status"]
                estimates = np.full(len(status), np.nan, dtype=np.float64)
                emitted = np.flatnonzero(status != _PRUNED)
                if len(emitted):
                    hashes_seen = shard["hashes_seen"][emitted]
                    estimates[emitted] = np.where(
                        hashes_seen > 0,
                        task.posterior.map_estimate_many(
                            shard["matches"][emitted], hashes_seen
                        ),
                        0.0,
                    )
                result_queue.put(("ok", worker_id, estimates))
                shard = None
            elif tag == "exact":
                query_rows, rows = message[1], message[2]
                values = task.segments.cross_similarities(
                    task.query_prepared, query_rows, rows
                )
                result_queue.put(("ok", worker_id, values))
            else:
                result_queue.put(("error", worker_id, f"unknown task {tag!r}"))
        except Exception:
            result_queue.put(("error", worker_id, traceback.format_exc()))


class ServingPool:
    """Forked worker pool serving one batched query call.

    Shards the batched serving pipeline across workers in two dimensions:

    * **probing** is sharded by query slice (each worker probes a contiguous
      run of query rows against the full inherited postings);
    * **verification and exact ranking** are sharded over the candidate
      pairs, which arrive sorted by ``(query row, collection row)`` — since
      global rows are assigned segment-contiguously, a balanced contiguous
      cut of that order is a query-major, owning-segment-minor partition of
      the (query x segment) grid.  Many-query batches therefore split across
      queries, while a single huge-candidate-set query splits across its
      owning segments/row ranges — both shapes parallelise.

    The parent remains the sole RNG/extension authority: each verification
    round it extends the query family and exactly the segment stores that
    still own active pairs (the serial path's round-lazy pattern, so store
    widths and RNG stream positions after the call are identical to serial
    execution) and publishes the fresh columns to shared memory, keyed per
    store.  Per-worker outputs are merged back in shard order, which
    restores the exact serial pair order — outputs are bit-identical to the
    serial batch path (enforced by ``tests/property/test_query_serving.py``).
    """

    def __init__(self, n_workers: int, task: ServingTask):
        if n_workers < 2:
            raise ValueError(f"ServingPool needs n_workers >= 2, got {n_workers}")
        self._task = task
        # Snapshot the fork-time store widths *before* forking: publication
        # of post-fork columns starts at these bases.
        self._bases = {_QUERY_KEY: int(task.query_store.n_hashes)}
        for index, segment in enumerate(task.segments.segments):
            self._bases[index] = int(segment.store.n_hashes)
        self._pool = _WorkerPool(n_workers, _serving_worker_main, task)
        self._exporters: dict = {}
        self._shard_workers: list[int] = []

    @property
    def n_workers(self) -> int:
        """Number of forked worker processes serving this call."""
        return self._pool.n_workers

    # ----------------------------- plumbing ----------------------------- #
    def _publish(self, key, store) -> None:
        """Publish every materialised column of ``store`` beyond its base.

        A key missing from the fork-time base snapshot means a concurrent
        writer committed that segment in the snapshot→fork window (the
        many-readers/one-writer serving contract allows this); its columns
        are published from zero.  Publishing columns a worker also inherited
        is benign — hash determinism makes the published values identical to
        the inherited ones, and ``_ColumnSource`` tolerates overlapping
        pieces — whereas a too-high base would leave a worker with a
        coverage gap.  Bases from the snapshot can only under-shoot a
        worker's fork width (stores grow monotonically), never over-shoot.
        """
        exporter = self._exporters.get(key)
        if exporter is None:
            exporter = _SignatureExporter(
                self._pool,
                store_produces_bits(store),
                key=key,
                base=self._bases.get(key, 0),
            )
            self._exporters[key] = exporter
        exporter.ensure(store, store.n_hashes)

    # ------------------------------ probing ------------------------------ #
    def probe(self, query_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sharded :meth:`BandPostings.probe_many` over the query rows.

        Each worker probes a contiguous query slice; worker results are
        relative to their slice and re-based on merge.  Slices are disjoint
        and ascending, and probe results are sorted by (position, row) within
        a slice, so the concatenation equals the serial probe bit for bit.
        """
        issued = self._pool.scatter("probe", (query_rows,))
        if not issued:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        replies = self._pool.gather(issued)
        positions = np.concatenate([replies[wid][0] + lo for wid, lo in issued])
        rows = np.concatenate([replies[wid][1] for wid, _ in issued])
        return positions, rows

    # ---------------------------- verification --------------------------- #
    def _begin_verify(self, query_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Route pairs to segments, cut shards, ship them to the workers."""
        segment_ids, local_rows = self._task.segments.locate(rows)
        issued = self._pool.scatter("verify", (query_rows, segment_ids, local_rows))
        self._shard_workers = [wid for wid, _ in issued]
        self._pool.gather(issued)
        return segment_ids

    def verify_bayes(self, query_family, query_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Round-synchronous parallel twin of ``QueryIndex._verify_bayes``.

        Returns the per-pair posterior MAP estimates with NaN marking pruned
        pairs, in the pair order given (bit-identical to the serial path).
        """
        params = self._task.params
        n_pairs = len(rows)
        if n_pairs == 0:
            return np.zeros(0, dtype=np.float64)
        segment_ids = self._begin_verify(query_rows, rows)
        active_total = n_pairs
        active_segments = set(np.unique(segment_ids).tolist())
        segments = self._task.segments.segments
        for round_index in range(params.n_rounds):
            if active_total == 0:
                break
            n_prev = round_index * params.k
            n_now = n_prev + params.k
            # The parent is the sole extension authority: the query family
            # extends every round any pair is still active, and exactly the
            # segments owning active pairs extend — the identical lazy
            # pattern (and hence RNG stream consumption and final store
            # widths) as the serial path.
            query_store = query_family.signatures(n_now)
            self._publish(_QUERY_KEY, query_store)
            for segment_index in sorted(active_segments):
                segment = segments[segment_index]
                segment.ensure_hashes(n_now)
                self._publish(segment_index, segment.store)
            self._pool.send(self._shard_workers, ("round", n_prev, n_now))
            replies = self._pool.collect(self._shard_workers)
            active_total = sum(replies[wid][0] for wid in self._shard_workers)
            active_segments = set()
            for wid in self._shard_workers:
                active_segments.update(replies[wid][1])
        self._pool.send(self._shard_workers, ("estimates",))
        replies = self._pool.collect(self._shard_workers)
        return np.concatenate([replies[wid] for wid in self._shard_workers])

    # --------------------------- exact ranking --------------------------- #
    def map_exact(self, query_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Sharded exact cross-similarities (pair order preserved)."""
        if len(rows) == 0:
            return np.zeros(0, dtype=np.float64)
        issued = self._pool.scatter("exact", (query_rows, rows))
        replies = self._pool.gather(issued)
        return np.concatenate([replies[wid] for wid, _ in issued])

    def shutdown(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        self._pool.shutdown()


def store_produces_bits(store) -> bool:
    """Whether a signature store holds packed bits (vs integer hashes)."""
    return isinstance(store, BitSignatures)


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #
class StreamExecutor:
    """Streamed (and optionally multicore) pipeline execution.

    Parameters
    ----------
    block_size:
        Candidate pairs per verification block (and per generation block);
        bounds the peak candidate-array and verification-state memory.
        ``None`` selects :data:`DEFAULT_BLOCK_SIZE`.
    n_workers:
        Worker processes for the verification phase.  ``1`` (default) runs
        the blocked pipeline in-process; ``> 1`` forks a pool and shards each
        block's pairs across it.
    """

    def __init__(self, block_size: int | None = None, n_workers: int | None = None):
        self.block_size = DEFAULT_BLOCK_SIZE if block_size is None else int(block_size)
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        self.n_workers = 1 if n_workers is None else int(n_workers)
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {self.n_workers}")

    def run(self, generator, verifier, collection):
        """Stream-generate, deduplicate and verify; returns
        ``(candidate_metadata, output, timings)``."""
        start_total = time.perf_counter()
        stream = generator.generate_blocks(collection, self.block_size)
        accumulator = _PairKeyAccumulator(collection.n_vectors)
        for left, right in stream:
            accumulator.add(left, right)
        source = PairBlockSource(
            accumulator.finalize(), collection.n_vectors, self.block_size
        )
        generation_time = time.perf_counter() - start_total

        start = time.perf_counter()
        pool = None
        if self.n_workers > 1 and len(source):
            pool = _WorkerPool(self.n_workers, _worker_main, verifier)
        try:
            output = verifier.verify_source(source, pool=pool)
        finally:
            if pool is not None:
                pool.shutdown()
        verification_time = time.perf_counter() - start
        timings = {
            "generation": generation_time,
            "verification": verification_time,
            "total": time.perf_counter() - start_total,
        }
        return dict(stream.metadata), output, timings
