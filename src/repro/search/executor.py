"""Sharded, block-streamed execution of the candidate/verify pipeline.

One shared-memory, round-synchronous worker pool serves **two call sites**:

* the offline all-pairs engine (:class:`StreamExecutor`, used by
  :meth:`SearchEngine.run` when ``block_size``/``n_workers`` is set), and
* the online serving layer (:class:`ServingPool`, used by
  :meth:`QueryIndex.query_many` / :meth:`QueryIndex.top_k_many` when their
  ``n_workers`` knob is set), which shards band-key probing, the round-lazy
  cross-store BayesLSH pruning and exact/estimate ranking across forked
  workers.

The serial :meth:`SearchEngine.run` path materialises every candidate pair in
one array and verifies it on one core.  This module provides the streaming
alternative the engine switches to when ``block_size`` or ``n_workers`` is
set:

* **Streamed generation** — candidate generators yield raw pair blocks
  (:meth:`CandidateGenerator.generate_blocks`); the executor canonicalises
  and deduplicates them *incrementally* against a compact sorted key set
  (8 bytes per unique pair), so the peak pair-array footprint is bounded by
  the block size plus the deduplicated key set instead of the raw collision
  count (for LSH the raw count is often many times the unique count).
* **Blocked verification** — the deduplicated pairs are verified in
  ``block_size`` slices (:class:`PairBlockSource`), so the per-pair
  verification state (status/matches/gather scratch) is bounded by the block
  size.  Per-block outputs are combined with
  :meth:`~repro.core.bayeslsh.VerificationOutput.merge`.
* **Multicore round-synchronous verification** — with ``n_workers > 1`` a
  pool of forked worker processes verifies each block's pairs in contiguous
  shards.  The *parent* extends the shared hash family round by round (so the
  RNG stream consumption is identical to the serial path) and exports the
  fresh signature columns into POSIX shared memory; workers gather hash
  columns straight out of the shared segments without ever pickling the
  signature store.  Every prune/emit decision depends only on the pair's own
  ``(m, n)`` counts, so sharding pairs across processes is semantics-free:
  pairs, estimates, counters and the per-round trace are bit-identical to
  the serial path (enforced by ``tests/property/test_execution_invariance``).

Determinism contract
--------------------
For every pipeline, every ``block_size`` and every ``n_workers``:

* the output pair set, its order, and every estimate are bit-identical to the
  serial path (workers run the same NumPy/scipy kernels on the same inputs);
* ``n_candidates`` / ``n_pruned`` / ``hash_comparisons`` /
  ``exact_computations`` and the per-round trace are identical (merged
  round-by-round across blocks and shards);
* hash families are extended by the parent only, in the same order as the
  serial path, so a given ``(seed, hash index)`` yields the same hash
  function everywhere.

Fault tolerance
---------------
Worker loss is survivable, not fatal.  The pool *supervises* its workers:
every gather polls worker liveness (a SIGKILLed or crashed worker surfaces
through its exit code) and, when a ``round_timeout`` is configured, applies
a per-gather deadline after which a live-but-silent worker is declared hung
and SIGKILLed.  Either way the failed worker is retired — it receives no
further work — and its shard is **re-executed serially in the parent** with
the same kernels: the parent is the sole RNG/extension authority and every
per-pair decision depends only on that pair's own counts, so results after
any single- or multi-worker loss are bit-identical to the all-serial run
(enforced by ``tests/faults/``).  The serving pool recovers at shard
granularity; the all-pairs round protocol re-runs the affected block.
:class:`WorkerFailure` (naming the workers, the task tag and the round) is
raised only when no fallback exists for the failing operation.  Shutdown is
unconditional: every call site tears the pool down under ``try``/``finally``
and :meth:`~_WorkerPool.shutdown` force-kills stragglers before unlinking
the shared-memory segments, so no exception path leaks ``/dev/shm``.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import threading
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.bayeslsh import VerificationOutput
from repro.hashing.signatures import BitSignatures, _tile_rows, count_packed_matches
from repro.testing import faults as _faults

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "PairBlockSource",
    "PoolDegradedWarning",
    "ResidentServingPool",
    "ServingPool",
    "ServingTask",
    "StreamExecutor",
    "WorkerFailure",
]

_LOGGER = logging.getLogger("repro.search.executor")

#: default number of candidate pairs per verification block
DEFAULT_BLOCK_SIZE = 65536

_WORD_BITS = 32


# --------------------------------------------------------------------- #
# incremental pair deduplication
# --------------------------------------------------------------------- #
class _PairKeyAccumulator:
    """Incrementally deduplicated candidate pairs as sorted ``int64`` keys.

    A pair ``(i, j)`` with ``i < j`` is encoded as ``i * n_vectors + j``;
    keys sort in the same lexicographic ``(i, j)`` order that
    :meth:`CandidateSet.from_arrays` produces, so decoding the final key
    array yields exactly the serial candidate arrays.  Incoming blocks are
    buffered and merged amortised (when the pending volume reaches the
    consolidated size), keeping the total cost at ``O(N log N)`` over any
    number of blocks.
    """

    def __init__(self, n_vectors: int):
        if n_vectors >= 1 << 31:
            raise NotImplementedError(
                "streamed deduplication supports up to 2**31 - 1 vectors "
                "(pair keys must fit in int64); use the monolithic path"
            )
        self._span = int(n_vectors)
        self._sorted = np.zeros(0, dtype=np.int64)
        self._pending: list[np.ndarray] = []
        self._pending_total = 0

    def add(self, left: np.ndarray, right: np.ndarray) -> None:
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        keep = left != right
        low = np.minimum(left[keep], right[keep])
        high = np.maximum(left[keep], right[keep])
        if not len(low):
            return
        self._pending.append(np.unique(low * self._span + high))
        self._pending_total += len(self._pending[-1])
        if self._pending_total >= max(len(self._sorted), 1 << 16):
            self._consolidate()

    def _consolidate(self) -> None:
        if not self._pending:
            return
        self._sorted = np.unique(np.concatenate([self._sorted, *self._pending]))
        self._pending = []
        self._pending_total = 0

    def finalize(self) -> np.ndarray:
        self._consolidate()
        return self._sorted


class PairBlockSource:
    """Deduplicated candidate pairs, readable in contiguous sorted blocks.

    Also acts as a lazy ``Sequence[(i, j)]`` (``len`` / indexing), which is
    what the Jaccard prior fitting samples from — the sampled indices and
    hence the fitted prior are identical to the serial path's, which samples
    from the same pairs in the same sorted order.
    """

    def __init__(self, keys: np.ndarray, n_vectors: int, block_size: int):
        self._keys = keys
        self._span = int(n_vectors)
        self._block_size = int(block_size)

    @property
    def block_size(self) -> int:
        """Pairs per verification slice (the executor's memory bound)."""
        return self._block_size

    def __len__(self) -> int:
        return len(self._keys)

    def __getitem__(self, index: int) -> tuple[int, int]:
        key = int(self._keys[index])
        return key // self._span, key % self._span

    def all_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The full (sorted, deduplicated) pair arrays."""
        return self._keys // self._span, self._keys % self._span

    def blocks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(left, right)`` slices of at most ``block_size`` pairs."""
        for start in range(0, len(self._keys), self._block_size):
            chunk = self._keys[start : start + self._block_size]
            yield chunk // self._span, chunk % self._span


# --------------------------------------------------------------------- #
# shared-memory signature export
# --------------------------------------------------------------------- #
class _SegmentTable:
    """Worker-side registry of shared-memory signature segments.

    Counts hash agreements straight from the shared buffers with the same
    integer kernels the in-process stores use (`count_packed_matches` for
    packed bits, gather + ``np.equal`` + row sum for integer signatures), so
    worker counts are bit-identical to store counts.
    """

    def __init__(self):
        self._segments: list[dict] = []
        self._handles: list = []  # keep SharedMemory objects alive

    def attach(self, descriptor: dict) -> None:
        from multiprocessing import shared_memory

        # The worker is forked, so it shares the parent's resource-tracker
        # process: attaching re-registers the same name (a set, no-op) and
        # the parent's unlink() deregisters it exactly once.
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        array = np.ndarray(
            tuple(descriptor["shape"]), dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf
        )
        self._handles.append(shm)
        self._segments.append(
            {
                "hash_start": descriptor["hash_start"],
                "hash_end": descriptor["hash_end"],
                "bits": descriptor["bits"],
                "array": array,
            }
        )

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        counts = np.zeros(len(left), dtype=np.int64)
        if end <= start:
            return counts
        covered = start
        for segment in self._segments:
            lo = max(covered, segment["hash_start"])
            hi = min(end, segment["hash_end"])
            if hi <= lo or lo != covered:
                continue
            array = segment["array"]
            if segment["bits"]:
                word_base = segment["hash_start"] // _WORD_BITS
                word_lo = lo // _WORD_BITS - word_base
                word_hi = -(-hi // _WORD_BITS) - word_base
                words = np.ascontiguousarray(array[:, word_lo:word_hi])
                counts += count_packed_matches(
                    words[left],
                    words[right],
                    lo - (word_lo + word_base) * _WORD_BITS,
                    hi - lo,
                )
            else:
                columns = np.ascontiguousarray(
                    array[:, lo - segment["hash_start"] : hi - segment["hash_start"]]
                )
                equal = np.equal(columns[left], columns[right])
                counts += equal.sum(axis=1, dtype=np.int64)
            covered = hi
            if covered >= end:
                break
        if covered < end:
            raise RuntimeError(
                f"shared segments cover hashes up to {covered}, needed {end}"
            )
        return counts


class _SignatureExporter:
    """Parent-side publication of signature columns into shared memory.

    The parent extends the hash family (keeping RNG streams identical to the
    serial path) and copies each fresh column block into a new shared-memory
    segment that every worker attaches on notification.

    ``key`` names the store the columns belong to (the serving pool exports
    one stream per collection segment plus one for the query batch; the
    all-pairs pool exports a single keyless stream), and ``base`` is the
    column count the workers already inherited through the fork — publication
    starts there instead of at zero.

    ``transient`` marks the stream's segments as batch-scoped: a resident
    pool registers them for early reclamation (once every worker has
    provably consumed them) instead of holding them until shutdown — the
    query batch's columns are garbage the moment the next batch starts.
    """

    def __init__(
        self,
        pool: "_WorkerPool",
        produces_bits: bool,
        key=None,
        base: int = 0,
        transient: bool = False,
    ):
        self._pool = pool
        self._bits = bool(produces_bits)
        self._key = key
        self._transient = bool(transient)
        self._published = int(base)
        if self._bits and self._published % _WORD_BITS:
            raise ValueError(
                f"bit-store publication base must be word-aligned, got {base}"
            )

    def ensure(self, store, n_now: int) -> None:
        """Publish columns so workers can count hashes ``[0, n_now)``."""
        if n_now <= self._published:
            return
        from multiprocessing import shared_memory

        if self._bits:
            # Publish whole words; _published is always word-aligned so
            # consecutive segments cover disjoint hash ranges.
            word_start = self._published // _WORD_BITS
            word_end = -(-n_now // _WORD_BITS)
            block = store.word_block(word_start, word_end)
            hash_start = word_start * _WORD_BITS
            hash_end = word_end * _WORD_BITS
        else:
            block = store.column_block(self._published, n_now)
            hash_start = self._published
            hash_end = n_now
        shm = shared_memory.SharedMemory(create=True, size=max(block.nbytes, 1))
        view = np.ndarray(block.shape, dtype=block.dtype, buffer=shm.buf)
        view[:] = block
        descriptor = {
            "name": shm.name,
            "shape": block.shape,
            "dtype": block.dtype.str,
            "hash_start": hash_start,
            "hash_end": hash_end,
            "bits": self._bits,
        }
        if self._key is not None:
            descriptor["key"] = self._key
        self._pool.register_segment(shm, descriptor, transient=self._transient)
        self._published = hash_end


# --------------------------------------------------------------------- #
# worker supervision
# --------------------------------------------------------------------- #
class WorkerFailure(RuntimeError):
    """One or more pool workers died, hung or errored during a gather.

    Attributes
    ----------
    failed:
        ``{worker id: reason}`` for every worker that failed this gather
        (died with an exit code, exceeded the hung-worker deadline, or
        replied with an error).
    replies:
        The replies successfully collected from the surviving workers —
        recovery paths reuse them so only the failed shards are recomputed.
    tag:
        The task tag being gathered (``"probe"``, ``"round"``, ...).
    round_index:
        The verification round during which the failure surfaced, or
        ``None`` outside the round protocol.
    """

    def __init__(self, failed: dict, replies: dict, tag: str, round_index=None):
        self.failed = dict(failed)
        self.replies = dict(replies)
        self.tag = tag
        self.round_index = round_index
        where = f" (round {round_index})" if round_index is not None else ""
        details = "; ".join(
            f"worker {wid}: {reason}" for wid, reason in sorted(self.failed.items())
        )
        super().__init__(
            f"worker(s) {sorted(self.failed)} failed during {tag!r}{where} — {details}"
        )


class PoolDegradedWarning(UserWarning):
    """A resident pool permanently lost serving capacity.

    Emitted (via :mod:`warnings`) when a crash-looping worker slot is
    quarantined — the pool continues with fewer workers — and again when the
    last slot is gone and the pool degrades to the serial path.  Results
    stay bit-identical throughout (degradation only changes *who* executes
    the shards); the warning is the operational signal that throughput
    headroom was lost and the process should be inspected or recycled.
    """


# --------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------- #
_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2


def _worker_main(worker_id: int, verifier, task_queue, result_queue) -> None:
    """Worker loop: verifies pair shards round-synchronously.

    The process is forked, so ``verifier`` (with its prepared collection,
    measure and parameters) is inherited by reference; only small control
    messages and shard index arrays travel through the queues.  Decision
    tables are rebuilt locally from the broadcast posterior/params — they are
    deterministic functions of those inputs, so every worker's tables agree
    with the parent's.
    """
    segments = _SegmentTable()
    mode = None
    posterior = None
    params = None
    min_matches = None
    concentration = None
    shard: dict | None = None
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        if tag == "_fault_sleep":  # injected by the fault harness only
            time.sleep(message[1])
            continue
        try:
            if tag == "segment":
                segments.attach(message[1])
                continue  # broadcast; no reply
            if tag == "setup":
                mode, blob = message[1], message[2]
                posterior, params = pickle.loads(blob)
                from repro.core.concentration_cache import ConcentrationCache
                from repro.core.min_matches import MinMatchesTable

                max_hashes = params.max_hashes if mode == "bayes" else params.h
                min_matches = MinMatchesTable(
                    posterior,
                    threshold=params.threshold,
                    epsilon=params.epsilon,
                    k=params.k,
                    max_hashes=max_hashes,
                )
                concentration = (
                    ConcentrationCache(posterior, delta=params.delta, gamma=params.gamma)
                    if mode == "bayes"
                    else None
                )
                continue  # broadcast; no reply
            if tag == "begin":
                left, right = message[1], message[2]
                shard = {
                    "left": left,
                    "right": right,
                    "status": np.full(len(left), _ACTIVE, dtype=np.int8),
                    "matches": np.zeros(len(left), dtype=np.int64),
                    "hashes_seen": np.zeros(len(left), dtype=np.int64),
                }
                result_queue.put(("ok", worker_id, len(left)))
            elif tag == "round":
                n_prev, n_now = message[1], message[2]
                status = shard["status"]
                matches = shard["matches"]
                active = np.flatnonzero(status == _ACTIVE)
                if len(active):
                    new_matches = segments.count_matches_many(
                        shard["left"][active], shard["right"][active], n_prev, n_now
                    )
                    matches[active] += new_matches
                    shard["hashes_seen"][active] = n_now
                    keep_mask = min_matches.passes_many(matches[active], n_now)
                    status[active[~keep_mask]] = _PRUNED
                    survivors = active[keep_mask]
                    if concentration is not None and len(survivors):
                        concentrated = concentration.is_concentrated_many(
                            matches[survivors], n_now
                        )
                        status[survivors[concentrated]] = _EMITTED
                n_alive = int(np.sum(status != _PRUNED))
                n_active = int(np.sum(status == _ACTIVE))
                result_queue.put(("ok", worker_id, (len(active), n_alive, n_active)))
            elif tag == "finish":
                status = shard["status"]
                if mode == "bayes":
                    mask = status != _PRUNED
                    out_matches = shard["matches"][mask]
                    out_hashes = shard["hashes_seen"][mask]
                    if len(out_matches):
                        estimates = np.where(
                            out_hashes > 0,
                            posterior.map_estimate_many(out_matches, out_hashes),
                            0.0,
                        ).astype(np.float64, copy=False)
                    else:
                        estimates = np.zeros(0, dtype=np.float64)
                    result_queue.put(("ok", worker_id, (mask, estimates)))
                else:  # lite: exact-verify the survivors
                    mask = status != _PRUNED
                    survivors = np.flatnonzero(mask)
                    exact_values = np.array(
                        [
                            verifier.exact_similarity(
                                int(shard["left"][idx]), int(shard["right"][idx])
                            )
                            for idx in survivors
                        ],
                        dtype=np.float64,
                    )
                    result_queue.put(("ok", worker_id, (mask, exact_values)))
                shard = None
            elif tag == "exact":
                from repro.verification.base import exact_similarities_for_pairs

                left, right = message[1], message[2]
                values = exact_similarities_for_pairs(
                    verifier.prepared, verifier.measure, left, right
                )
                result_queue.put(("ok", worker_id, values))
            elif tag == "count":
                left, right, start, end = message[1], message[2], message[3], message[4]
                values = segments.count_matches_many(left, right, start, end)
                result_queue.put(("ok", worker_id, values))
            else:
                result_queue.put(("error", worker_id, f"unknown task {tag!r}"))
        except Exception:
            result_queue.put(("error", worker_id, traceback.format_exc()))


# --------------------------------------------------------------------- #
# worker pool
# --------------------------------------------------------------------- #
class _WorkerPool:
    """A pool of forked workers driven round-synchronously, under supervision.

    Generic process/queue plumbing shared by the two call sites: ``target``
    is the worker loop (:func:`_worker_main` for the all-pairs engine,
    :func:`_serving_worker_main` for the serving layer) and ``payload`` is
    whatever state that loop should inherit through the fork (never pickled —
    the pool always uses the ``fork`` start method).

    Supervision: every gather checks worker liveness, and ``round_timeout``
    (seconds, ``None`` = wait forever) bounds how long a *live* worker may
    stay silent before it is declared hung and SIGKILLed.  Failed workers
    are retired — excluded from every later :meth:`scatter`/:meth:`send` —
    and the gather raises :class:`WorkerFailure` carrying the survivors'
    replies, so callers can re-execute just the failed shards serially.
    """

    def __init__(self, n_workers: int, target, payload, round_timeout: float | None = None):
        try:
            # Start the shared-memory resource tracker *before* forking so
            # every worker inherits (and reuses) the parent's tracker instead
            # of spawning its own, which would try to clean the parent's
            # segments up again at worker exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        context = multiprocessing.get_context("fork")
        # Retained so a resident pool can re-fork a replacement process into
        # a retired slot (see :meth:`respawn`).
        self._context = context
        self._target = target
        self._payload = payload
        self._n_workers = int(n_workers)
        self._round_timeout = None if round_timeout is None else float(round_timeout)
        #: optional ``(worker id, reason) -> decision`` hook a supervisor
        #: (the resident pool) installs; the returned decision string is
        #: appended to the retirement warning so operators see respawn /
        #: quarantine outcomes next to the failure itself.
        self._on_retire = None
        # One result queue *per worker*, each with a single writer: a worker
        # SIGKILLed mid-reply can die holding its queue's write lock, and with
        # a shared queue that poisoned lock would silently stall every
        # survivor's replies (alive-but-silent forever).  Per-worker queues
        # confine the damage to the dead worker, whose queue is never read
        # again once the liveness sweep retires it.
        self._result_queues = [context.Queue() for _ in range(self._n_workers)]
        self._task_queues = [context.Queue() for _ in range(self._n_workers)]
        self._segments: list = []
        # Two-generation transient segment tracking (resident pools only):
        # ``_transient`` holds batch-scoped segments still possibly unread by
        # an idle worker; ``_retired_transient`` holds the previous
        # generation, unlinked by :meth:`release_transient` once a later
        # queue barrier proves every live worker drained past them.
        self._transient: list = []
        self._retired_transient: list = []
        self._dead: dict[int, str] = {}
        self._processes = [
            context.Process(
                target=target,
                args=(wid, payload, self._task_queues[wid], self._result_queues[wid]),
                daemon=True,
            )
            for wid in range(self._n_workers)
        ]
        for process in self._processes:
            process.start()
        self._shard_workers: list[int] = []
        _faults.fire("pool_start", pool=self)

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def live_workers(self) -> list[int]:
        """Worker ids not yet retired by the supervisor, in worker order."""
        return [wid for wid in range(self._n_workers) if wid not in self._dead]

    # ----------------------------- plumbing ----------------------------- #
    def _broadcast(self, message) -> None:
        for wid in self.live_workers:
            self._task_queues[wid].put(message)

    def _retire(self, wid: int, reason: str) -> None:
        """Record a worker as failed and make sure its process is gone.

        SIGKILL (not SIGTERM) so that SIGSTOPped/hung workers die too; the
        pool-owned shared segments stay mapped until :meth:`shutdown` —
        other workers are still reading them.  When a supervisor installed
        an ``_on_retire`` hook, its respawn/quarantine decision is appended
        to the warning.
        """
        self._dead[wid] = reason
        process = self._processes[wid]
        if process.is_alive():
            process.kill()
        process.join(timeout=10)
        decision = ""
        if self._on_retire is not None:
            try:
                decision = self._on_retire(wid, reason) or ""
            except Exception:  # the hook must never mask the retirement
                _LOGGER.exception("retire hook failed for worker %d", wid)
        _LOGGER.warning(
            "pool worker %d %s; its shard is re-executed serially in the parent%s",
            wid,
            reason,
            f" — {decision}" if decision else "",
        )

    def respawn(self, wid: int) -> None:
        """Fork a fresh process into retired slot ``wid``, reviving it.

        The replacement forks from the parent's *current* state, so it
        inherits every column materialised so far; later publications can
        only overlap what it inherited (bases never over-shoot), which
        :class:`_ColumnSource` tolerates — hash determinism makes published
        and inherited values identical.  Both queues are replaced: the old
        ones may hold undrained frames addressed to the dead process, or be
        torn mid-write by its SIGKILL.
        """
        if wid not in self._dead:
            raise RuntimeError(f"worker {wid} is not retired; cannot respawn")
        for queue in (self._task_queues[wid], self._result_queues[wid]):
            try:
                queue.cancel_join_thread()
                queue.close()
            except Exception:
                pass
        self._task_queues[wid] = self._context.Queue()
        self._result_queues[wid] = self._context.Queue()
        process = self._context.Process(
            target=self._target,
            args=(wid, self._payload, self._task_queues[wid], self._result_queues[wid]),
            daemon=True,
        )
        self._processes[wid] = process
        process.start()
        del self._dead[wid]

    def set_round_timeout(self, round_timeout: float | None) -> None:
        """Re-arm the hung-worker deadline for the gathers that follow.

        A resident pool serves batches with per-request deadlines; each
        batch installs its own bound here before dispatching.
        """
        self._round_timeout = None if round_timeout is None else float(round_timeout)

    def _collect(self, worker_ids, tag: str = "task", round_index=None) -> dict:
        """Gather one reply per worker id, supervising liveness and deadlines.

        Keeps collecting from the remaining workers after a failure so the
        survivors' replies are never lost; if any worker failed (died,
        exceeded the hung-worker deadline, or replied with an error) the
        gather ends by raising :class:`WorkerFailure` naming each failed
        worker, the task tag and the round, with the survivors' replies
        attached for shard-level recovery.
        """
        import queue as queue_module

        replies: dict[int, object] = {}
        failed: dict[int, str] = {}
        pending: set[int] = set()
        for wid in worker_ids:
            if wid in self._dead:
                failed[wid] = self._dead[wid]
            else:
                pending.add(wid)
        deadline = (
            time.monotonic() + self._round_timeout
            if self._round_timeout is not None
            else None
        )
        while pending:
            progressed = False
            for wid in sorted(pending):
                message = None
                try:
                    message = self._result_queues[wid].get(timeout=0.05)
                except queue_module.Empty:
                    continue
                except Exception as exc:
                    # A worker SIGKILLed mid-write can tear its queue frame;
                    # the liveness sweep below attributes the loss to it.
                    _LOGGER.warning(
                        "result-queue read for worker %d failed (%s); checking liveness",
                        wid,
                        exc,
                    )
                    continue
                try:
                    status, reply_wid, payload = message
                except Exception:
                    continue  # garbled frame from a killed writer
                if reply_wid != wid:
                    continue  # torn frame from a killed writer
                progressed = True
                if status == "error":
                    self._retire(wid, f"raised in-task:\n{payload}")
                    failed[wid] = self._dead[wid]
                else:
                    replies[wid] = payload
                pending.discard(wid)
            if not pending:
                break
            if not progressed:
                for wid in sorted(pending):
                    process = self._processes[wid]
                    if not process.is_alive():
                        self._retire(
                            wid, f"died without replying (exit code {process.exitcode})"
                        )
                        failed[wid] = self._dead[wid]
                        pending.discard(wid)
            if pending and deadline is not None and time.monotonic() >= deadline:
                for wid in sorted(pending):
                    self._retire(
                        wid,
                        f"hung (no reply within round_timeout={self._round_timeout}s)",
                    )
                    failed[wid] = self._dead[wid]
                pending.clear()
        if failed:
            raise WorkerFailure(failed, replies, tag, round_index)
        return replies

    def register_segment(self, shm, descriptor: dict, transient: bool = False) -> None:
        """Publish a shared-memory signature segment to every live worker.

        ``transient`` segments are batch-scoped (a resident pool's query
        columns): they are reclaimed early by :meth:`release_transient`
        instead of living until :meth:`shutdown`.
        """
        (self._transient if transient else self._segments).append(shm)
        self._broadcast(("segment", descriptor))

    def release_transient(self) -> None:
        """Unlink the transient generation every worker has provably drained.

        Call only after a *full-pool queue barrier* (a broadcast message
        every live worker has replied to, enqueued after the segments): FIFO
        queue order then guarantees each live worker already attached — or
        died without ever reading, which is equally safe — every segment in
        the retired generation.  The current generation rotates into retired
        for the next call.
        """
        for shm in self._retired_transient:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        self._retired_transient = self._transient
        self._transient = []

    def scatter(self, tag: str, arrays: tuple, extra: tuple = ()) -> list[tuple[int, int, int]]:
        """Shard parallel arrays contiguously over the *live* workers.

        Cuts balanced contiguous slices across the surviving workers (empty
        slices are skipped) and enqueues ``(tag, *slices, *extra)`` on each
        recipient's queue (``extra`` carries scalar operands shared by all
        shards).  Returns the issued ``(worker id, start, end)`` triples in
        worker order — slice order is preserved on merge, so the
        concatenated replies are independent of how many workers survive.
        An empty return with non-empty input means every worker is retired
        and the caller must fall back serially.
        """
        live = self.live_workers
        if not live:
            return []
        bounds = np.linspace(0, len(arrays[0]), len(live) + 1).astype(np.int64)
        issued: list[tuple[int, int, int]] = []
        for slot, wid in enumerate(live):
            lo, hi = int(bounds[slot]), int(bounds[slot + 1])
            if hi > lo:
                self._task_queues[wid].put(
                    (tag, *(array[lo:hi] for array in arrays), *extra)
                )
                issued.append((wid, lo, hi))
        return issued

    def send(self, worker_ids, message) -> None:
        """Enqueue the same message on each listed (non-retired) worker's queue."""
        for wid in worker_ids:
            if wid not in self._dead:
                self._task_queues[wid].put(message)

    def collect(self, worker_ids, tag: str = "task", round_index=None) -> dict:
        """Gather one reply per listed worker id (:class:`WorkerFailure` on loss)."""
        return self._collect(worker_ids, tag=tag, round_index=round_index)

    def setup(self, mode: str, posterior, params) -> None:
        self._broadcast(("setup", mode, pickle.dumps((posterior, params))))

    # --------------------------- block protocol -------------------------- #
    def begin_block(self, left: np.ndarray, right: np.ndarray) -> None:
        issued = self.scatter("begin", (left, right))
        if not issued and len(left):
            raise WorkerFailure(dict(self._dead), {}, "begin")
        self._shard_workers = [wid for wid, _, _ in issued]
        self._collect(self._shard_workers, tag="begin")

    def round(self, n_prev: int, n_now: int) -> tuple[int, int, int]:
        """Run one hash round on every shard; returns summed counters."""
        round_index = n_prev // max(n_now - n_prev, 1)
        self.send(self._shard_workers, ("round", n_prev, n_now))
        replies = self._collect(self._shard_workers, tag="round", round_index=round_index)
        processed = sum(replies[wid][0] for wid in self._shard_workers)
        alive = sum(replies[wid][1] for wid in self._shard_workers)
        active = sum(replies[wid][2] for wid in self._shard_workers)
        return processed, alive, active

    def finish_block(self) -> list:
        """Collect per-shard results in shard order."""
        self.send(self._shard_workers, ("finish",))
        replies = self._collect(self._shard_workers, tag="finish")
        return [replies[wid] for wid in self._shard_workers]

    def map_exact(self, left: np.ndarray, right: np.ndarray, fallback=None) -> np.ndarray:
        """Sharded exact similarities, with serial recovery of failed shards.

        ``fallback(left_slice, right_slice)`` computes a shard in the parent
        with the serial kernel; it is used for every shard when no worker
        survives, and for exactly the failed shards when some do.  Without a
        fallback, worker loss raises :class:`WorkerFailure`.
        """
        issued = self.scatter("exact", (left, right))
        if not issued:
            if fallback is None:
                raise WorkerFailure(dict(self._dead), {}, "exact")
            return fallback(left, right)
        try:
            replies = self._collect([wid for wid, _, _ in issued], tag="exact")
        except WorkerFailure as failure:
            if fallback is None:
                raise
            replies = failure.replies
            for wid, lo, hi in issued:
                if wid in failure.failed:
                    replies[wid] = fallback(left[lo:hi], right[lo:hi])
        return np.concatenate([replies[wid] for wid, _, _ in issued])

    def map_count(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int, fallback=None
    ) -> np.ndarray:
        """Sharded hash-agreement counts, with serial recovery of failed shards.

        Same supervision contract as :meth:`map_exact`; ``fallback`` takes
        ``(left_slice, right_slice)`` and counts with the parent's store.
        """
        issued = self.scatter("count", (left, right), extra=(start, end))
        if not issued:
            if fallback is None:
                raise WorkerFailure(dict(self._dead), {}, "count")
            return fallback(left, right)
        try:
            replies = self._collect([wid for wid, _, _ in issued], tag="count")
        except WorkerFailure as failure:
            if fallback is None:
                raise
            replies = failure.replies
            for wid, lo, hi in issued:
                if wid in failure.failed:
                    replies[wid] = fallback(left[lo:hi], right[lo:hi])
        return np.concatenate([replies[wid] for wid, _, _ in issued])

    def shutdown(self) -> None:
        """Stop every worker and release the shared-memory segments.

        Unconditional teardown: best-effort stop messages, bounded joins,
        then SIGKILL for stragglers (covers hung/SIGSTOPped workers), and a
        per-segment close+unlink that survives individual failures — called
        under ``try``/``finally`` at every call site so no exception path
        leaks ``/dev/shm`` segments.
        """
        for queue in self._task_queues:
            try:
                queue.put_nowait(("stop",))
            except Exception:
                pass
        for process in self._processes:
            try:
                process.join(timeout=5)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5)
            except Exception:
                pass
        # A queue whose reader was SIGKILLed can strand its feeder thread
        # blocked on a full pipe; the queue's atexit finalizer would then
        # join that thread forever and hang interpreter shutdown.  Cancel
        # the exit-time join before closing — nothing reads these queues
        # again, so dropping their buffered frames is safe.
        for queue in (*self._task_queues, *self._result_queues):
            try:
                queue.cancel_join_thread()
                queue.close()
            except Exception:
                pass
        for shm in (*self._segments, *self._transient, *self._retired_transient):
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        self._segments = []
        self._transient = []
        self._retired_transient = []


# --------------------------------------------------------------------- #
# round-synchronous block verification (shared by BayesLSH / Lite)
# --------------------------------------------------------------------- #
def _block_output(
    left: np.ndarray,
    right: np.ndarray,
    mask: np.ndarray,
    values: np.ndarray,
    trace: list,
    hash_comparisons: int,
    mode: str,
    threshold: float,
) -> VerificationOutput:
    """Assemble one block's :class:`VerificationOutput` from survivor data.

    Shared by the pooled path and the serial-fallback path so both produce
    byte-identical outputs from identical ``(mask, values)`` inputs.
    """
    n_pruned = int(len(left) - mask.sum())
    if mode == "bayes":
        return VerificationOutput(
            left=left[mask],
            right=right[mask],
            estimates=values,
            n_candidates=len(left),
            n_pruned=n_pruned,
            trace=trace,
            hash_comparisons=hash_comparisons,
        )
    # lite: threshold the exact survivor similarities
    survivors_left = left[mask]
    survivors_right = right[mask]
    above = values > threshold
    return VerificationOutput(
        left=survivors_left[above],
        right=survivors_right[above],
        estimates=values[above],
        n_candidates=len(left),
        n_pruned=n_pruned,
        trace=trace,
        hash_comparisons=hash_comparisons,
        exact_computations=int(mask.sum()),
    )


def _serial_block_verify(
    family,
    params,
    mode: str,
    posterior,
    verifier,
    left: np.ndarray,
    right: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, list, int]:
    """Verify one pair block in the parent with the serial kernels.

    The recovery path behind :func:`run_round_protocol`: when workers are
    lost mid-block, the whole block re-executes here.  Bit-identity to the
    all-serial run holds because (a) every per-pair decision depends only on
    that pair's own ``(matches, hashes_seen)`` counts, so re-deriving them
    from round zero reproduces the serial decisions exactly, and (b) the
    parent is the sole hash/RNG authority — ``family.signatures(n)`` only
    appends columns beyond what the aborted pooled attempt already
    materialised, never redraws, so store contents match the serial run's.

    Returns ``(survivor mask, survivor values, trace, hash comparisons)``
    in the exact shapes the pooled merge produces.
    """
    from repro.core.concentration_cache import ConcentrationCache
    from repro.core.min_matches import MinMatchesTable

    max_hashes = params.max_hashes if mode == "bayes" else params.h
    min_matches = MinMatchesTable(
        posterior,
        threshold=params.threshold,
        epsilon=params.epsilon,
        k=params.k,
        max_hashes=max_hashes,
    )
    concentration = (
        ConcentrationCache(posterior, delta=params.delta, gamma=params.gamma)
        if mode == "bayes"
        else None
    )
    status = np.full(len(left), _ACTIVE, dtype=np.int8)
    matches = np.zeros(len(left), dtype=np.int64)
    hashes_seen = np.zeros(len(left), dtype=np.int64)
    trace: list[tuple[int, int]] = []
    hash_comparisons = 0
    n_active = len(left)
    for round_index in range(params.n_rounds if len(left) else 0):
        if n_active == 0:
            break
        n_prev = round_index * params.k
        n_now = n_prev + params.k
        store = family.signatures(n_now)
        active = np.flatnonzero(status == _ACTIVE)
        if len(active):
            matches[active] += store.count_matches_many(
                left[active], right[active], n_prev, n_now
            )
            hashes_seen[active] = n_now
            keep_mask = min_matches.passes_many(matches[active], n_now)
            status[active[~keep_mask]] = _PRUNED
            survivors = active[keep_mask]
            if concentration is not None and len(survivors):
                concentrated = concentration.is_concentrated_many(
                    matches[survivors], n_now
                )
                status[survivors[concentrated]] = _EMITTED
        hash_comparisons += len(active) * params.k
        trace.append((n_now, int(np.sum(status != _PRUNED))))
        n_active = int(np.sum(status == _ACTIVE))
    mask = status != _PRUNED
    if mode == "bayes":
        out_matches = matches[mask]
        out_hashes = hashes_seen[mask]
        if len(out_matches):
            values = np.where(
                out_hashes > 0,
                posterior.map_estimate_many(out_matches, out_hashes),
                0.0,
            ).astype(np.float64, copy=False)
        else:
            values = np.zeros(0, dtype=np.float64)
    else:  # lite: exact-verify the survivors
        if verifier is None:
            raise RuntimeError(
                "serial fallback for 'lite' mode needs the verifier for exact "
                "similarities; pass verifier= to run_round_protocol"
            )
        survivors = np.flatnonzero(mask)
        values = np.array(
            [
                verifier.exact_similarity(int(left[idx]), int(right[idx]))
                for idx in survivors
            ],
            dtype=np.float64,
        )
    return mask, values, trace, hash_comparisons


def _pooled_block(
    pool: _WorkerPool,
    exporter: _SignatureExporter,
    family,
    params,
    mode: str,
    threshold: float,
    left: np.ndarray,
    right: np.ndarray,
) -> VerificationOutput:
    """Run one pair block through the worker pool (raises WorkerFailure on loss)."""
    _faults.fire("allpairs_begin", pool=pool)
    pool.begin_block(left, right)
    trace: list[tuple[int, int]] = []
    hash_comparisons = 0
    n_active = len(left)
    for round_index in range(params.n_rounds if len(left) else 0):
        if n_active == 0:
            break
        n_prev = round_index * params.k
        n_now = n_prev + params.k
        store = family.signatures(n_now)
        exporter.ensure(store, n_now)
        _faults.fire("allpairs_round", pool=pool, round_index=round_index)
        processed, alive, n_active = pool.round(n_prev, n_now)
        hash_comparisons += processed * params.k
        trace.append((n_now, alive))
    shard_results = pool.finish_block()
    masks = [mask for mask, _ in shard_results]
    mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
    values = (
        np.concatenate([vals for _, vals in shard_results])
        if shard_results
        else np.zeros(0, dtype=np.float64)
    )
    return _block_output(left, right, mask, values, trace, hash_comparisons, mode, threshold)


def run_round_protocol(
    pool: _WorkerPool,
    family,
    params,
    mode: str,
    posterior,
    source: PairBlockSource,
    threshold: float,
    verifier=None,
) -> VerificationOutput:
    """Drive the workers through the round-synchronous verification of
    every block of ``source``.

    The parent owns hash generation: each round it lazily extends ``family``
    (identical RNG stream consumption to the serial path) and publishes the
    fresh columns to shared memory before broadcasting the round.

    Fault tolerance: a block that loses workers (death, hang past the pool's
    ``round_timeout``, in-task error) is re-executed whole in the parent via
    :func:`_serial_block_verify` — partial shard results from the survivors
    are discarded, so the block's output (including trace and counter
    bookkeeping) is bit-identical to the all-serial run.  Retired workers
    stay excluded from later blocks; once every worker is gone all remaining
    blocks run serially without touching the queues.  ``verifier`` supplies
    the exact-similarity kernel the ``"lite"`` fallback needs.
    """
    pool.setup(mode, posterior, params)
    exporter = _SignatureExporter(pool, family.produces_bits)
    outputs: list[VerificationOutput] = []
    for block_index, (left, right) in enumerate(source.blocks()):
        try:
            if not pool.live_workers:
                raise WorkerFailure(dict(pool._dead), {}, "begin")
            outputs.append(
                _pooled_block(pool, exporter, family, params, mode, threshold, left, right)
            )
        except WorkerFailure as failure:
            _LOGGER.warning(
                "pair block %d: %s; re-executing the block serially in the parent",
                block_index,
                failure,
            )
            mask, values, trace, comparisons = _serial_block_verify(
                family, params, mode, posterior, verifier, left, right
            )
            outputs.append(
                _block_output(left, right, mask, values, trace, comparisons, mode, threshold)
            )
    return VerificationOutput.merge(outputs)


# --------------------------------------------------------------------- #
# parallel serving (QueryIndex.query_many / top_k_many)
# --------------------------------------------------------------------- #
@dataclass
class ServingTask:
    """Everything a serving worker inherits through the fork.

    Built by :class:`~repro.search.query.QueryIndex` per batched call, after
    the query batch has been hashed to the banding width: the workers read
    the postings, the per-segment stores and the query store from their
    forked copy of this object, and only signature columns materialised
    *after* the fork travel through POSIX shared memory.  Nothing here is
    ever pickled.
    """

    #: the index's :class:`~repro.serving.segments.SegmentedCollection`
    segments: object
    #: the index's band postings (already rebuilt if the staleness budget required it)
    postings: object
    #: the prepared query batch (measure-specific view)
    query_prepared: object
    #: the query batch's signature store, materialised to the banding width
    query_store: object
    #: BayesLSH decision machinery shared with the serial path
    min_matches: object
    concentration: object
    posterior: object
    params: object
    #: total collection rows (probe-result encoding span)
    n_vectors: int


#: key under which the query batch's signature columns are published
_QUERY_KEY = "q"


class _ColumnSource:
    """Worker-side read access to one signature store across the fork.

    Columns materialised before the fork are read from the worker's inherited
    copy of the store; columns the parent materialised *after* the fork
    arrive as shared-memory chunks (attached on broadcast).  The inherited
    chunks and the published ones tile the hash axis contiguously, and every
    chunk boundary is word-aligned, so any requested sub-range falls
    entirely within one piece once split at the piece boundaries.

    The inherited layout is captured once as a :meth:`chunk_map` snapshot —
    after that the worker never calls a store method, so it can never block
    on a lock the fork captured in the locked state (another reader thread
    of the parent may have been holding a store lock at fork time, and no
    thread exists in the child to release it).
    """

    def __init__(self, store):
        self._bits = isinstance(store, BitSignatures)
        base = int(store.n_hashes)  # fork-time width
        if self._bits and base % _WORD_BITS:
            raise RuntimeError(
                f"fork-time bit store width {base} is not word-aligned"
            )
        #: (hash_start, hash_end, array) pieces: fork-inherited chunks first,
        #: shared-memory chunks appended as the parent publishes them
        self._pieces: list[tuple[int, int, np.ndarray]] = list(store.chunk_map())
        self._handles: list = []  # keep SharedMemory objects alive

    @property
    def bits(self) -> bool:
        return self._bits

    def attach(self, descriptor: dict) -> None:
        from multiprocessing import shared_memory

        # Forked workers share the parent's resource tracker; attaching
        # re-registers the same name (a set, no-op) and the parent's unlink()
        # deregisters it exactly once.
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        array = np.ndarray(
            tuple(descriptor["shape"]), dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf
        )
        self._handles.append(shm)
        self._pieces.append((descriptor["hash_start"], descriptor["hash_end"], array))

    def close(self) -> None:
        """Unmap the attached shared-memory handles (worker-side only).

        Called when a resident worker replaces its query source at a batch
        boundary; closing only unmaps this process's view — the parent still
        owns (and later unlinks) the segments.
        """
        for shm in self._handles:
            try:
                shm.close()
            except Exception:
                pass
        self._handles = []
        self._pieces = []

    def boundaries(self, start: int, end: int) -> list[int]:
        """Piece boundaries intersecting ``[start, end)`` (sorted, inclusive ends)."""
        points = {start, end}
        for lo, hi, _ in self._pieces:
            if start < lo < end:
                points.add(lo)
            if start < hi < end:
                points.add(hi)
        return sorted(points)

    def word_block(self, start: int, end: int) -> np.ndarray:
        """Packed words covering bit range ``[start, end)`` of one piece."""
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        for lo, hi, array in self._pieces:
            if lo <= start and end <= hi:
                base_word = lo // _WORD_BITS
                return array[:, word_start - base_word : word_end - base_word]
        raise RuntimeError(
            f"bit range [{start}, {end}) is neither fork-inherited nor published "
            f"to shared memory"
        )

    def column_block(self, start: int, end: int) -> np.ndarray:
        """Integer signature columns ``[start, end)`` of one piece."""
        for lo, hi, array in self._pieces:
            if lo <= start and end <= hi:
                return array[:, start - lo : end - lo]
        raise RuntimeError(
            f"hash range [{start}, {end}) is neither fork-inherited nor published "
            f"to shared memory"
        )


def _cross_window_counts(
    query_source: _ColumnSource,
    segment_source: _ColumnSource,
    query_rows: np.ndarray,
    local_rows: np.ndarray,
    start: int,
    end: int,
) -> np.ndarray:
    """Hash agreements between query rows and segment rows over ``[start, end)``.

    The worker-side twin of
    :meth:`~repro.hashing.signatures.SignatureStore.count_matches_cross`:
    agreement counts are additive over disjoint hash sub-ranges, so the
    window is split at the two sources' piece boundaries and each piece is
    counted with the same integer kernels the in-process stores use
    (:func:`count_packed_matches` for packed bits, gather + ``==`` + row sum
    for integer signatures) — worker counts are bit-identical to store
    counts.  Pairs are processed in the same L2-sized tiles as the store
    kernels (tiling only the pair axis is value-preserving), so a large
    shard — the regime ``n_workers`` targets — never round-trips an
    ``n_pairs x span`` gather through DRAM.
    """
    n_pairs = len(query_rows)
    counts = np.zeros(n_pairs, dtype=np.int64)
    if end <= start:
        return counts
    points = sorted(
        set(query_source.boundaries(start, end))
        | set(segment_source.boundaries(start, end))
    )
    if query_source.bits:
        span_bytes = (-(-(end - start) // _WORD_BITS) + 1) * 4
    else:
        span_bytes = (end - start) * 4  # int32 signatures (int64 halves the tile)
    tile = _tile_rows(span_bytes)
    for t0 in range(0, n_pairs, tile):
        t1 = min(t0 + tile, n_pairs)
        query_tile = query_rows[t0:t1]
        local_tile = local_rows[t0:t1]
        for lo, hi in zip(points[:-1], points[1:]):
            if query_source.bits:
                query_words = query_source.word_block(lo, hi)
                segment_words = segment_source.word_block(lo, hi)
                counts[t0:t1] += count_packed_matches(
                    query_words[query_tile],
                    segment_words[local_tile],
                    lo - (lo // _WORD_BITS) * _WORD_BITS,
                    hi - lo,
                )
            else:
                query_columns = query_source.column_block(lo, hi)
                segment_columns = segment_source.column_block(lo, hi)
                equal = query_columns[query_tile] == segment_columns[local_tile]
                counts[t0:t1] += equal.sum(axis=1, dtype=np.int64)
    return counts


def _serving_worker_main(worker_id: int, task: ServingTask, task_queue, result_queue) -> None:
    """Serving worker loop: probes, verifies and ranks pair shards.

    The process is forked, so the whole :class:`ServingTask` (postings,
    per-segment stores, prepared views, decision tables) is inherited by
    reference; only small control messages and shard index arrays travel
    through the queues.  Every per-pair decision depends only on the pair's
    own ``(m, n)`` counts, and every kernel is row-local, so sharding is
    semantics-free — outputs are bit-identical to the serial batch path.
    """
    sources: dict = {}

    def source_for(key) -> _ColumnSource:
        source = sources.get(key)
        if source is None:
            if key == _QUERY_KEY:
                store = task.query_store
            else:
                store = task.segments.segments[key].store
            source = _ColumnSource(store)
            sources[key] = source
        return source

    shard: dict | None = None
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        if tag == "_fault_sleep":  # injected by the fault harness only
            time.sleep(message[1])
            continue
        try:
            if tag == "segment":
                source_for(message[1]["key"]).attach(message[1])
                continue  # broadcast; no reply
            if tag == "batch":
                # A resident pool opens a new batch: replace the query-side
                # state (the only per-batch piece of the fork-inherited
                # task).  The store is rebuilt from its raw matrix — fresh
                # locks, one contiguous chunk — and the cached query source
                # is dropped so the next round snapshots the new store.
                from repro.serving.snapshot import _store_from_parts

                query_prepared, kind, matrix, n_hashes = pickle.loads(message[1])
                task.query_prepared = query_prepared
                task.query_store = _store_from_parts(kind, matrix, n_hashes)
                stale = sources.pop(_QUERY_KEY, None)
                if stale is not None:
                    stale.close()
                shard = None
                result_queue.put(("ok", worker_id, True))
            elif tag == "probe":
                query_rows = message[1]
                positions, rows = task.postings.probe_many(
                    task.query_store, query_rows, task.n_vectors
                )
                result_queue.put(("ok", worker_id, (positions, rows)))
            elif tag == "verify":
                query_rows, segment_ids, local_rows = message[1], message[2], message[3]
                shard = {
                    "query_rows": query_rows,
                    "segment_ids": segment_ids,
                    "local_rows": local_rows,
                    "status": np.full(len(query_rows), _ACTIVE, dtype=np.int8),
                    "matches": np.zeros(len(query_rows), dtype=np.int64),
                    "hashes_seen": np.zeros(len(query_rows), dtype=np.int64),
                }
                result_queue.put(("ok", worker_id, len(query_rows)))
            elif tag == "round":
                n_prev, n_now = message[1], message[2]
                status = shard["status"]
                matches = shard["matches"]
                active = np.flatnonzero(status == _ACTIVE)
                if len(active):
                    # Group the active pairs by owning segment (same stable
                    # grouping as SegmentedCollection._grouped) and count
                    # each group against its segment's column source.
                    query_source = source_for(_QUERY_KEY)
                    segment_ids = shard["segment_ids"][active]
                    order = np.argsort(segment_ids, kind="stable")
                    boundaries = np.flatnonzero(np.diff(segment_ids[order])) + 1
                    for positions in np.split(order, boundaries):
                        pairs = active[positions]
                        matches[pairs] += _cross_window_counts(
                            query_source,
                            source_for(int(segment_ids[positions[0]])),
                            shard["query_rows"][pairs],
                            shard["local_rows"][pairs],
                            n_prev,
                            n_now,
                        )
                    shard["hashes_seen"][active] = n_now
                    keep_mask = task.min_matches.passes_many(matches[active], n_now)
                    status[active[~keep_mask]] = _PRUNED
                    survivors = active[keep_mask]
                    if len(survivors):
                        concentrated = task.concentration.is_concentrated_many(
                            matches[survivors], n_now
                        )
                        status[survivors[concentrated]] = _EMITTED
                still_active = status == _ACTIVE
                active_segments = np.unique(shard["segment_ids"][still_active])
                result_queue.put(
                    ("ok", worker_id, (int(still_active.sum()), active_segments.tolist()))
                )
            elif tag == "estimates":
                status = shard["status"]
                estimates = np.full(len(status), np.nan, dtype=np.float64)
                emitted = np.flatnonzero(status != _PRUNED)
                if len(emitted):
                    hashes_seen = shard["hashes_seen"][emitted]
                    estimates[emitted] = np.where(
                        hashes_seen > 0,
                        task.posterior.map_estimate_many(
                            shard["matches"][emitted], hashes_seen
                        ),
                        0.0,
                    )
                result_queue.put(("ok", worker_id, estimates))
                shard = None
            elif tag == "exact":
                query_rows, rows = message[1], message[2]
                values = task.segments.cross_similarities(
                    task.query_prepared, query_rows, rows
                )
                result_queue.put(("ok", worker_id, values))
            else:
                result_queue.put(("error", worker_id, f"unknown task {tag!r}"))
        except Exception:
            result_queue.put(("error", worker_id, traceback.format_exc()))


def _serial_serving_verify(
    task: ServingTask, query_family, query_rows: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Verify (query, candidate) pairs serially with the serving kernels.

    The recovery path behind :meth:`ServingPool.verify_bayes`: a shard whose
    worker is lost re-executes here, in the parent, against the same
    segments/decision tables the workers inherited.  This is a line-for-line
    twin of ``QueryIndex._verify_bayes``'s serial loop, so a recovered shard
    is bit-identical to the serial batch path: per-pair decisions depend only
    on the pair's own ``(m, n)`` counts, and the parent's round-lazy store
    extension draws the same RNG stream regardless of which component (pool
    round loop or this fallback) requests a width first.
    """
    params = task.params
    n_pairs = len(query_rows)
    status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
    matches = np.zeros(n_pairs, dtype=np.int64)
    hashes_seen = np.zeros(n_pairs, dtype=np.int64)
    for round_index in range(params.n_rounds if n_pairs else 0):
        active = np.flatnonzero(status == _ACTIVE)
        if len(active) == 0:
            break
        n_prev = round_index * params.k
        n_now = n_prev + params.k
        query_store = query_family.signatures(n_now)
        matches[active] += task.segments.count_matches_cross(
            query_store, query_rows[active], rows[active], n_prev, n_now
        )
        hashes_seen[active] = n_now
        keep_mask = task.min_matches.passes_many(matches[active], n_now)
        status[active[~keep_mask]] = _PRUNED
        survivors = active[keep_mask]
        if len(survivors):
            concentrated = task.concentration.is_concentrated_many(
                matches[survivors], n_now
            )
            status[survivors[concentrated]] = _EMITTED
    estimates = np.full(n_pairs, np.nan, dtype=np.float64)
    emitted = np.flatnonzero(status != _PRUNED)
    if len(emitted):
        estimates[emitted] = np.where(
            hashes_seen[emitted] > 0,
            task.posterior.map_estimate_many(matches[emitted], hashes_seen[emitted]),
            0.0,
        )
    return estimates


class ServingPool:
    """Forked worker pool serving one batched query call.

    Shards the batched serving pipeline across workers in two dimensions:

    * **probing** is sharded by query slice (each worker probes a contiguous
      run of query rows against the full inherited postings);
    * **verification and exact ranking** are sharded over the candidate
      pairs, which arrive sorted by ``(query row, collection row)`` — since
      global rows are assigned segment-contiguously, a balanced contiguous
      cut of that order is a query-major, owning-segment-minor partition of
      the (query x segment) grid.  Many-query batches therefore split across
      queries, while a single huge-candidate-set query splits across its
      owning segments/row ranges — both shapes parallelise.

    The parent remains the sole RNG/extension authority: each verification
    round it extends the query family and exactly the segment stores that
    still own active pairs (the serial path's round-lazy pattern, so store
    widths and RNG stream positions after the call are identical to serial
    execution) and publishes the fresh columns to shared memory, keyed per
    store.  Per-worker outputs are merged back in shard order, which
    restores the exact serial pair order — outputs are bit-identical to the
    serial batch path (enforced by ``tests/property/test_query_serving.py``).

    Fault tolerance: each stage's failed shards (worker death, hang past
    ``round_timeout``, in-task error) are re-executed serially in the parent
    with the same kernels (:func:`_serial_serving_verify` and the stores'
    own methods), so results stay bit-identical to the serial path after any
    worker loss — including losing every worker.
    """

    #: publication-stream keys whose shared-memory segments are batch-scoped
    #: (reclaimed early by a resident pool); empty for the per-call pool,
    #: which unlinks everything at shutdown anyway.
    _transient_keys: frozenset = frozenset()

    def __init__(self, n_workers: int, task: ServingTask, round_timeout: float | None = None):
        if n_workers < 2:
            raise ValueError(f"ServingPool needs n_workers >= 2, got {n_workers}")
        self._requested_workers = int(n_workers)
        self._round_timeout = None if round_timeout is None else float(round_timeout)
        self._fork_pool(task)

    def _fork_pool(self, task: ServingTask) -> None:
        """Snapshot the fork-time store widths, then fork the worker set.

        Publication of post-fork columns starts at the snapshotted bases;
        the snapshot is taken *before* forking so a base can only
        under-shoot a worker's fork-time width (benign overlap), never
        over-shoot it (coverage gap).  A ``task.query_store`` of ``None``
        (a resident pool forked between batches) publishes the query stream
        from zero until the first batch installs its width.
        """
        self._task = task
        self._bases = {
            _QUERY_KEY: (
                int(task.query_store.n_hashes) if task.query_store is not None else 0
            )
        }
        for index, segment in enumerate(task.segments.segments):
            self._bases[index] = int(segment.store.n_hashes)
        self._pool = _WorkerPool(
            self._requested_workers,
            _serving_worker_main,
            task,
            round_timeout=self._round_timeout,
        )
        self._exporters: dict = {}

    @property
    def n_workers(self) -> int:
        """Number of forked worker processes serving this call."""
        return self._pool.n_workers

    # ----------------------------- plumbing ----------------------------- #
    def _publish(self, key, store) -> None:
        """Publish every materialised column of ``store`` beyond its base.

        A key missing from the fork-time base snapshot means a concurrent
        writer committed that segment in the snapshot→fork window (the
        many-readers/one-writer serving contract allows this); its columns
        are published from zero.  Publishing columns a worker also inherited
        is benign — hash determinism makes the published values identical to
        the inherited ones, and ``_ColumnSource`` tolerates overlapping
        pieces — whereas a too-high base would leave a worker with a
        coverage gap.  Bases from the snapshot can only under-shoot a
        worker's fork width (stores grow monotonically), never over-shoot.
        """
        exporter = self._exporters.get(key)
        if exporter is None:
            exporter = _SignatureExporter(
                self._pool,
                store_produces_bits(store),
                key=key,
                base=self._bases.get(key, 0),
                transient=key in self._transient_keys,
            )
            self._exporters[key] = exporter
        exporter.ensure(store, store.n_hashes)

    # ------------------------------ probing ------------------------------ #
    def probe(self, query_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sharded :meth:`BandPostings.probe_many` over the query rows.

        Each worker probes a contiguous query slice; worker results are
        relative to their slice and re-based on merge.  Slices are disjoint
        and ascending, and probe results are sorted by (position, row) within
        a slice, so the concatenation equals the serial probe bit for bit.
        Failed shards are re-probed serially in the parent (the postings are
        read-only for the duration of the call), preserving bit-identity.
        """
        task = self._task

        def serial(slice_rows: np.ndarray):
            return task.postings.probe_many(
                task.query_store, slice_rows, task.n_vectors
            )

        _faults.fire("serving_probe", pool=self._pool)
        issued = self._pool.scatter("probe", (query_rows,))
        if not issued:
            if len(query_rows) == 0:
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty
            positions, rows = serial(query_rows)
            return positions, rows
        try:
            replies = self._pool.collect([wid for wid, _, _ in issued], tag="probe")
        except WorkerFailure as failure:
            replies = failure.replies
            for wid, lo, hi in issued:
                if wid in failure.failed:
                    replies[wid] = serial(query_rows[lo:hi])
        positions = np.concatenate([replies[wid][0] + lo for wid, lo, _ in issued])
        rows = np.concatenate([replies[wid][1] for wid, _, _ in issued])
        return positions, rows

    # ---------------------------- verification --------------------------- #
    def verify_bayes(self, query_family, query_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Round-synchronous parallel twin of ``QueryIndex._verify_bayes``.

        Returns the per-pair posterior MAP estimates with NaN marking pruned
        pairs, in the pair order given (bit-identical to the serial path).

        Recovery: a shard whose worker fails — at hand-off, during any round,
        or at the estimates gather — is re-verified from round zero in the
        parent by :func:`_serial_serving_verify`, and its estimates slice
        replaces the lost worker's.  Per-pair decisions depend only on the
        pair's own counts and store extension is monotone in the requested
        width, so the recovered slice matches the serial path bit for bit.
        """
        params = self._task.params
        task = self._task
        n_pairs = len(rows)
        if n_pairs == 0:
            return np.zeros(0, dtype=np.float64)
        segment_ids, local_rows = task.segments.locate(rows)
        estimates = np.full(n_pairs, np.nan, dtype=np.float64)
        _faults.fire("serving_verify", pool=self._pool)
        issued = self._pool.scatter("verify", (query_rows, segment_ids, local_rows))
        if not issued:
            return _serial_serving_verify(task, query_family, query_rows, rows)
        shards = {wid: (lo, hi) for wid, lo, hi in issued}
        live = [wid for wid, _, _ in issued]

        def handle_failure(failure: WorkerFailure) -> dict:
            """Serially re-verify the failed shards; shrink the live set."""
            nonlocal live
            for wid in failure.failed:
                lo, hi = shards[wid]
                estimates[lo:hi] = _serial_serving_verify(
                    task, query_family, query_rows[lo:hi], rows[lo:hi]
                )
            live = [wid for wid in live if wid not in failure.failed]
            return failure.replies

        try:
            self._pool.collect(live, tag="verify")
        except WorkerFailure as failure:
            handle_failure(failure)
        active_total = sum(shards[wid][1] - shards[wid][0] for wid in live)
        live_mask = np.zeros(n_pairs, dtype=bool)
        for wid in live:
            lo, hi = shards[wid]
            live_mask[lo:hi] = True
        active_segments = set(np.unique(segment_ids[live_mask]).tolist())
        segments = task.segments.segments
        for round_index in range(params.n_rounds):
            if active_total == 0 or not live:
                break
            n_prev = round_index * params.k
            n_now = n_prev + params.k
            # The parent is the sole extension authority: the query family
            # extends every round any pair is still active, and exactly the
            # segments owning active pairs extend — the identical lazy
            # pattern (and hence RNG stream consumption and final store
            # widths) as the serial path.
            query_store = query_family.signatures(n_now)
            self._publish(_QUERY_KEY, query_store)
            for segment_index in sorted(active_segments):
                segment = segments[segment_index]
                segment.ensure_hashes(n_now)
                self._publish(segment_index, segment.store)
            _faults.fire("serving_round", pool=self._pool, round_index=round_index)
            self._pool.send(live, ("round", n_prev, n_now))
            try:
                replies = self._pool.collect(live, tag="round", round_index=round_index)
            except WorkerFailure as failure:
                replies = handle_failure(failure)
            active_total = sum(replies[wid][0] for wid in live)
            active_segments = set()
            for wid in live:
                active_segments.update(replies[wid][1])
        if live:
            _faults.fire("serving_estimates", pool=self._pool)
            self._pool.send(live, ("estimates",))
            try:
                replies = self._pool.collect(live, tag="estimates")
            except WorkerFailure as failure:
                replies = handle_failure(failure)
            for wid in live:
                lo, hi = shards[wid]
                estimates[lo:hi] = replies[wid]
        return estimates

    # --------------------------- exact ranking --------------------------- #
    def map_exact(self, query_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Sharded exact cross-similarities (pair order preserved).

        Failed shards are recomputed serially in the parent with the same
        segment-routed kernel (exact similarities are per-pair and
        row-local, so shard recovery is trivially bit-identical).
        """
        if len(rows) == 0:
            return np.zeros(0, dtype=np.float64)
        task = self._task

        def serial(slice_queries: np.ndarray, slice_rows: np.ndarray) -> np.ndarray:
            return task.segments.cross_similarities(
                task.query_prepared, slice_queries, slice_rows
            )

        _faults.fire("serving_exact", pool=self._pool)
        issued = self._pool.scatter("exact", (query_rows, rows))
        if not issued:
            return serial(query_rows, rows)
        try:
            replies = self._pool.collect([wid for wid, _, _ in issued], tag="exact")
        except WorkerFailure as failure:
            replies = failure.replies
            for wid, lo, hi in issued:
                if wid in failure.failed:
                    replies[wid] = serial(query_rows[lo:hi], rows[lo:hi])
        return np.concatenate([replies[wid] for wid, _, _ in issued])

    def shutdown(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        self._pool.shutdown()

    def release(self) -> None:
        """End this pool's involvement in the current call.

        For the per-call pool this is :meth:`shutdown`; a resident pool
        overrides it to end the batch lease instead.  ``QueryIndex``'s
        ``finally`` blocks call this one method for either pool kind.
        """
        self.shutdown()


class ResidentServingPool(ServingPool):
    """A self-healing :class:`ServingPool` that outlives individual calls.

    Instead of forking (and paying full shared-memory export) per batched
    call, the pool is forked once — workers keep the fork-inherited segment
    columns warm across batches and receive only deltas: each batch ships
    the new query state in one ``"batch"`` control message (the query store
    travels as its raw matrix and is rebuilt worker-side with fresh locks),
    and verification rounds publish only columns materialised after the
    fork, through the same keyed base-offset streams as the per-call pool.
    The probe/verify/rank methods are inherited unchanged, so a resident
    batch is bit-identical to the per-call pool and to the serial path.

    **Self-healing.**  A worker the supervisor retires (death, hang past the
    batch's ``round_timeout``, in-task error) finishes the current batch on
    the per-call pool's serial-fallback path, then its slot is *respawned*
    at a later batch boundary after a capped exponential backoff
    (``respawn_backoff * 2**(failures-1)``, capped at
    ``respawn_backoff_cap``).  A slot that crash-loops —
    ``max_worker_failures`` consecutive failures without completing a batch
    — is quarantined for the pool's lifetime, degrading the pool to fewer
    workers and, once no slot remains, to the serial path; both transitions
    emit :class:`PoolDegradedWarning`.  A batch survived by a worker resets
    its consecutive-failure count.

    **Epochs.**  The pool records the index epoch it forked from; segment
    churn (``insert``, posting rebuilds) bumps the index's epoch under its
    update lock, and the index refreshes the pool (full re-fork via
    :meth:`refresh`) before admitting the next batch — forked state is
    copy-on-write, so without a refresh the workers would silently serve
    the pre-churn corpus.  Quarantine and backoff state reset at refresh:
    the replacement workers share nothing with the crash-looping ones.

    Batches are serialised by an internal lease lock (concurrent
    ``query_many`` callers queue up); acquire it through :meth:`lease` and
    release via :meth:`end_batch`/:meth:`release`.
    """

    _transient_keys = frozenset({_QUERY_KEY})

    def __init__(
        self,
        n_workers: int,
        task: ServingTask,
        round_timeout: float | None = None,
        epoch: int = 0,
        max_worker_failures: int = 3,
        respawn_backoff: float = 0.1,
        respawn_backoff_cap: float = 5.0,
    ):
        if max_worker_failures < 1:
            raise ValueError(
                f"max_worker_failures must be at least 1, got {max_worker_failures}"
            )
        self._max_worker_failures = int(max_worker_failures)
        self._respawn_backoff = float(respawn_backoff)
        self._respawn_backoff_cap = float(respawn_backoff_cap)
        self._lease_lock = threading.Lock()
        self._closed = False
        self._warned_serial = False
        self._respawn_total = 0
        self._batches_served = 0
        self._serial_batches = 0
        self._refreshes = 0
        self.epoch = int(epoch)
        super().__init__(n_workers, task, round_timeout=round_timeout)
        self._wire_supervision()

    # ----------------------------- lifecycle ----------------------------- #
    def _wire_supervision(self) -> None:
        """(Re)attach healing state to a freshly forked worker set."""
        n = self._requested_workers
        self._consecutive_failures = [0] * n
        self._respawn_at = [0.0] * n
        self._quarantined: set[int] = set()
        self._pool._on_retire = self._note_retire

    def _note_retire(self, wid: int, reason: str) -> str:
        """Decide a retired slot's fate; returns the decision for the warning.

        Called by the worker pool's supervisor the moment it retires a
        worker.  The current batch always completes via serial fallback;
        this only schedules what happens to the slot at later batch
        boundaries.
        """
        self._consecutive_failures[wid] += 1
        failures = self._consecutive_failures[wid]
        if failures >= self._max_worker_failures:
            self._quarantined.add(wid)
            live = len(self._pool.live_workers)
            warnings.warn(
                f"resident pool worker slot {wid} quarantined after {failures} "
                f"consecutive failures; pool degraded to {live} live worker(s)",
                PoolDegradedWarning,
                stacklevel=2,
            )
            return f"quarantined after {failures} consecutive failures"
        backoff = min(
            self._respawn_backoff * (2 ** (failures - 1)), self._respawn_backoff_cap
        )
        self._respawn_at[wid] = time.monotonic() + backoff
        return (
            f"slot respawns at a later batch boundary after {backoff:.2f}s backoff "
            f"(failure {failures}/{self._max_worker_failures})"
        )

    def _heal(self) -> None:
        """Respawn retired slots whose backoff elapsed (quarantine excepted)."""
        now = time.monotonic()
        for wid in sorted(self._pool._dead):
            if wid in self._quarantined or now < self._respawn_at[wid]:
                continue
            self._pool.respawn(wid)
            self._respawn_total += 1
            _faults.fire("pool_respawn", pool=self._pool, worker=wid)

    def lease(
        self,
        query_prepared,
        query_store,
        round_timeout: float | None = None,
        refresh=None,
    ) -> "ResidentServingPool":
        """Acquire the pool for one batch and install the batch's query state.

        Serialises concurrent callers, then (optionally) runs ``refresh`` —
        the index's epoch check, which may call :meth:`refresh` under the
        index's update lock — and finally opens the batch with
        :meth:`begin_batch`.  The caller must :meth:`release` (==
        :meth:`end_batch`) in a ``finally`` block.
        """
        if self._closed:
            raise RuntimeError("resident pool is closed")
        self._lease_lock.acquire()
        try:
            if self._closed:
                raise RuntimeError("resident pool is closed")
            if refresh is not None:
                refresh()
            self.begin_batch(query_prepared, query_store, round_timeout=round_timeout)
        except BaseException:
            self._lease_lock.release()
            raise
        return self

    def begin_batch(
        self, query_prepared, query_store, round_timeout: float | None = None
    ) -> None:
        """Open a batch: heal slots, ship the query state, sync the workers.

        The ``"batch"`` broadcast doubles as the full-pool queue barrier
        that makes reclaiming the *previous* batch's query columns safe
        (every live worker acks it, proving its queue drained past them).
        Workers that fail at the hand-off are retired through the normal
        supervision path; with no live worker left the batch runs serially
        in the parent (the inherited methods already fall back when
        ``scatter`` finds nobody), bit-identically.
        """
        self._heal()
        self._pool.set_round_timeout(
            self._round_timeout if round_timeout is None else float(round_timeout)
        )
        task = self._task
        task.query_prepared = query_prepared
        task.query_store = query_store
        self._bases[_QUERY_KEY] = int(query_store.n_hashes)
        self._exporters.pop(_QUERY_KEY, None)
        self._batches_served += 1
        live = self._pool.live_workers
        if not live:
            if not self._warned_serial:
                self._warned_serial = True
                warnings.warn(
                    "resident pool has no live workers left; serving continues "
                    "on the serial path (bit-identical, reduced throughput)",
                    PoolDegradedWarning,
                    stacklevel=2,
                )
            self._serial_batches += 1
            return
        from repro.serving.snapshot import _store_parts

        blob = pickle.dumps((query_prepared, *_store_parts(query_store)))
        self._pool.send(live, ("batch", blob))
        try:
            self._pool.collect(live, tag="batch")
        except WorkerFailure:
            # The failed workers are already retired (and counted by
            # _note_retire); the survivors acked and serve the batch.
            pass
        self._pool.release_transient()

    def end_batch(self) -> None:
        """Close the batch: reset survivors' failure counts, free the lease."""
        try:
            for wid in self._pool.live_workers:
                self._consecutive_failures[wid] = 0
        finally:
            self._lease_lock.release()

    def release(self) -> None:
        """End the current batch lease (the resident twin of ``shutdown``)."""
        self.end_batch()

    def refresh(self, task: ServingTask, epoch: int) -> None:
        """Re-fork the worker set against post-churn index state.

        Called by the index (under its update lock, with the lease held)
        when the pool's epoch trails the index's: forked state is
        copy-on-write, so segment churn is invisible to the old workers.
        Tears the old worker set down — unlinking every shared segment —
        and forks a fresh one that inherits the current segments/postings.
        Healing state resets: the new workers share nothing with the old.
        """
        self._pool.shutdown()
        self._fork_pool(task)
        self._wire_supervision()
        self.epoch = int(epoch)
        self._refreshes += 1

    def stats(self) -> dict:
        """Pool-health snapshot for ops endpoints (all values JSON-safe).

        Keys: ``epoch``, ``n_workers`` (configured), ``live_workers``,
        ``quarantined`` (sorted slot ids), ``respawns`` (total),
        ``consecutive_failures`` (per slot), ``batches_served``,
        ``serial_batches``, ``refreshes``, ``closed``.
        """
        return {
            "epoch": self.epoch,
            "n_workers": self._requested_workers,
            "live_workers": len(self._pool.live_workers),
            "quarantined": sorted(self._quarantined),
            "respawns": self._respawn_total,
            "consecutive_failures": list(self._consecutive_failures),
            "batches_served": self._batches_served,
            "serial_batches": self._serial_batches,
            "refreshes": self._refreshes,
            "closed": self._closed,
        }

    def close(self) -> None:
        """Shut the pool down for good (idempotent; waits for a live batch)."""
        with self._lease_lock:
            if self._closed:
                return
            self._closed = True
            self._pool.shutdown()

    def shutdown(self) -> None:
        """Alias of :meth:`close`, matching the per-call pool's teardown name."""
        self.close()


def store_produces_bits(store) -> bool:
    """Whether a signature store holds packed bits (vs integer hashes)."""
    return isinstance(store, BitSignatures)


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #
class StreamExecutor:
    """Streamed (and optionally multicore) pipeline execution.

    Parameters
    ----------
    block_size:
        Candidate pairs per verification block (and per generation block);
        bounds the peak candidate-array and verification-state memory.
        ``None`` selects :data:`DEFAULT_BLOCK_SIZE`.
    n_workers:
        Worker processes for the verification phase.  ``1`` (default) runs
        the blocked pipeline in-process; ``> 1`` forks a pool and shards each
        block's pairs across it.
    round_timeout:
        Seconds a live worker may stay silent within one gather before the
        supervisor declares it hung, SIGKILLs it, and re-executes its block
        serially (see :class:`_WorkerPool`).  ``None`` (default) waits
        forever on live workers; dead workers are always detected promptly.
    """

    def __init__(
        self,
        block_size: int | None = None,
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ):
        self.block_size = DEFAULT_BLOCK_SIZE if block_size is None else int(block_size)
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        self.n_workers = 1 if n_workers is None else int(n_workers)
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {self.n_workers}")
        self.round_timeout = None if round_timeout is None else float(round_timeout)

    def run(self, generator, verifier, collection):
        """Stream-generate, deduplicate and verify; returns
        ``(candidate_metadata, output, timings)``."""
        start_total = time.perf_counter()
        stream = generator.generate_blocks(collection, self.block_size)
        accumulator = _PairKeyAccumulator(collection.n_vectors)
        for left, right in stream:
            accumulator.add(left, right)
        source = PairBlockSource(
            accumulator.finalize(), collection.n_vectors, self.block_size
        )
        generation_time = time.perf_counter() - start_total

        start = time.perf_counter()
        pool = None
        if self.n_workers > 1 and len(source):
            pool = _WorkerPool(
                self.n_workers, _worker_main, verifier, round_timeout=self.round_timeout
            )
        try:
            output = verifier.verify_source(source, pool=pool)
        finally:
            if pool is not None:
                pool.shutdown()
        verification_time = time.perf_counter() - start
        timings = {
            "generation": generation_time,
            "verification": verification_time,
            "total": time.perf_counter() - start_total,
        }
        return dict(stream.metadata), output, timings
