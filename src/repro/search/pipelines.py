"""The eight pipelines from the paper's experimental setup (Section 5.1).

========================  ==============================  ==========================
pipeline name             candidate generation            verification
========================  ==============================  ==========================
``allpairs``              AllPairs                        exact
``ap_bayeslsh``           AllPairs                        BayesLSH
``ap_bayeslsh_lite``      AllPairs                        BayesLSH-Lite
``lsh``                   LSH banding                     exact
``lsh_approx``            LSH banding                     fixed-budget MLE estimate
``lsh_bayeslsh``          LSH banding                     BayesLSH
``lsh_bayeslsh_lite``     LSH banding                     BayesLSH-Lite
``ppjoin``                PPJoin+ prefix filtering        exact
========================  ==============================  ==========================

The LSH-based pipelines share one hash family between candidate generation
and verification, reproducing the amortisation the paper highlights
(advantage 3 of BayesLSH).  ``allpairs``/``ap_*`` pipelines require a cosine
measure; ``ppjoin`` requires a binary measure (Jaccard or binary cosine).
"""

from __future__ import annotations

from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.lsh_index import LSHGenerator
from repro.candidates.ppjoin import PPJoinGenerator
from repro.hashing.base import get_hash_family
from repro.search.engine import SearchEngine, as_collection
from repro.similarity.measures import get_measure
from repro.verification.bayes import BayesLSHLiteVerifier, BayesLSHVerifier
from repro.verification.exact import ExactVerifier
from repro.verification.lsh_approx import LSHApproxVerifier

__all__ = ["PIPELINES", "make_pipeline", "pipelines_for_measure"]

#: pipeline name -> short human-readable description (the paper's labels)
PIPELINES: dict[str, str] = {
    "allpairs": "AllPairs (exact)",
    "ap_bayeslsh": "AllPairs + BayesLSH",
    "ap_bayeslsh_lite": "AllPairs + BayesLSH-Lite",
    "lsh": "LSH (exact verification)",
    "lsh_approx": "LSH Approx (fixed-budget MLE estimates)",
    "lsh_bayeslsh": "LSH + BayesLSH",
    "lsh_bayeslsh_lite": "LSH + BayesLSH-Lite",
    "ppjoin": "PPJoin+ (exact, binary vectors only)",
}

_BAYES_KEYS = {"epsilon", "delta", "gamma", "k", "max_hashes", "fit_prior", "prior_sample_size"}
_LITE_KEYS = {"epsilon", "h", "k", "fit_prior", "prior_sample_size"}
_LSH_GEN_KEYS = {"false_negative_rate", "signature_width"}
_APPROX_KEYS = {"num_hashes"}


def pipelines_for_measure(measure: str) -> list[str]:
    """The pipeline names applicable to a similarity measure.

    AllPairs needs a cosine-style dot-product bound; PPJoin+ needs binary
    vectors; the LSH pipelines work for every measure.
    """
    name = get_measure(measure).name
    lsh_pipelines = ["lsh", "lsh_approx", "lsh_bayeslsh", "lsh_bayeslsh_lite"]
    if name == "cosine":
        return ["allpairs", "ap_bayeslsh", "ap_bayeslsh_lite"] + lsh_pipelines
    if name == "binary_cosine":
        return ["allpairs", "ap_bayeslsh", "ap_bayeslsh_lite"] + lsh_pipelines + ["ppjoin"]
    # jaccard
    return lsh_pipelines + ["ppjoin"]


def _split_kwargs(kwargs: dict, allowed: set[str]) -> dict:
    return {key: value for key, value in kwargs.items() if key in allowed}


def make_pipeline(
    name: str,
    data,
    measure: str = "cosine",
    threshold: float = 0.5,
    seed: int = 0,
    **kwargs,
) -> SearchEngine:
    """Build one of the paper's pipelines by name.

    Parameters
    ----------
    name:
        One of :data:`PIPELINES`.
    data:
        The collection the pipeline will run on (needed up front because
        verifiers bind to their collection, and so the LSH pipelines can
        share hashes between the two phases).
    measure, threshold, seed:
        Query parameters.
    kwargs:
        Forwarded to the underlying components where applicable:
        ``epsilon``/``delta``/``gamma``/``k``/``max_hashes`` (BayesLSH),
        ``h`` (BayesLSH-Lite), ``num_hashes`` (LSH Approx),
        ``false_negative_rate``/``signature_width`` (LSH generation),
        ``fit_prior``/``prior_sample_size`` (Jaccard prior fitting).
    """
    name = name.lower()
    if name not in PIPELINES:
        known = ", ".join(sorted(PIPELINES))
        raise ValueError(f"unknown pipeline {name!r}; expected one of: {known}")
    measure_obj = get_measure(measure)
    if name not in pipelines_for_measure(measure_obj.name):
        raise ValueError(
            f"pipeline {name!r} does not support measure {measure_obj.name!r}; "
            f"applicable pipelines: {', '.join(pipelines_for_measure(measure_obj.name))}"
        )
    unknown = set(kwargs) - (_BAYES_KEYS | _LITE_KEYS | _LSH_GEN_KEYS | _APPROX_KEYS)
    if unknown:
        raise TypeError(f"unknown pipeline arguments: {', '.join(sorted(unknown))}")

    collection = as_collection(data)
    prepared = measure_obj.prepare(collection)

    if name.startswith("lsh"):
        # One hash family shared by candidate generation and verification.
        family = get_hash_family(measure_obj.lsh_family, prepared, seed=seed)
        generator = LSHGenerator(
            measure_obj,
            threshold,
            seed=seed,
            family=family,
            **_split_kwargs(kwargs, _LSH_GEN_KEYS),
        )
        if name == "lsh":
            verifier = ExactVerifier(collection, measure_obj, threshold)
        elif name == "lsh_approx":
            verifier = LSHApproxVerifier(
                collection,
                measure_obj,
                threshold,
                family=family,
                seed=seed,
                **_split_kwargs(kwargs, _APPROX_KEYS),
            )
        elif name == "lsh_bayeslsh":
            verifier = BayesLSHVerifier(
                collection,
                measure_obj,
                threshold,
                family=family,
                seed=seed,
                **_split_kwargs(kwargs, _BAYES_KEYS),
            )
        else:  # lsh_bayeslsh_lite
            verifier = BayesLSHLiteVerifier(
                collection,
                measure_obj,
                threshold,
                family=family,
                seed=seed,
                **_split_kwargs(kwargs, _LITE_KEYS),
            )
        return SearchEngine(generator, verifier, name=name)

    if name.startswith("ap") or name == "allpairs":
        generator = AllPairsGenerator(measure_obj, threshold)
        if name == "allpairs":
            verifier = ExactVerifier(collection, measure_obj, threshold)
        elif name == "ap_bayeslsh":
            verifier = BayesLSHVerifier(
                collection,
                measure_obj,
                threshold,
                seed=seed,
                **_split_kwargs(kwargs, _BAYES_KEYS),
            )
        else:  # ap_bayeslsh_lite
            verifier = BayesLSHLiteVerifier(
                collection,
                measure_obj,
                threshold,
                seed=seed,
                **_split_kwargs(kwargs, _LITE_KEYS),
            )
        return SearchEngine(generator, verifier, name=name)

    # ppjoin
    generator = PPJoinGenerator(measure_obj, threshold)
    verifier = ExactVerifier(collection, measure_obj, threshold)
    return SearchEngine(generator, verifier, name=name)
