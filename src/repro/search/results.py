"""Result containers for all-pairs similarity search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

import numpy as np

__all__ = ["ScoredPair", "SearchResult"]


class ScoredPair(NamedTuple):
    """One output pair: row indices (``i < j``) and the reported similarity."""

    i: int
    j: int
    similarity: float


@dataclass
class SearchResult:
    """The output of one all-pairs similarity search run.

    Attributes
    ----------
    left, right:
        Parallel row-index arrays of the reported pairs (``left[k] < right[k]``).
    similarities:
        Reported similarity per pair — exact for exact pipelines, an estimate
        for BayesLSH / LSH Approx.
    method:
        Pipeline name that produced the result.
    threshold, measure:
        The query parameters.
    n_candidates, n_pruned:
        Size of the candidate set entering verification and how many of those
        candidates verification discarded.
    timings:
        Wall-clock seconds per phase: ``generation``, ``verification`` and
        ``total``.
    exact_similarities:
        Whether ``similarities`` are exact values (True) or estimates (False).
    metadata:
        Generator / verifier statistics (index sizes, hash comparisons, the
        Figure-4 pruning trace and so on).
    """

    left: np.ndarray
    right: np.ndarray
    similarities: np.ndarray
    method: str
    threshold: float
    measure: str
    n_candidates: int = 0
    n_pruned: int = 0
    timings: dict = field(default_factory=dict)
    exact_similarities: bool = True
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.left)

    def __iter__(self) -> Iterator[ScoredPair]:
        for i, j, s in zip(self.left, self.right, self.similarities):
            yield ScoredPair(int(i), int(j), float(s))

    def pairs(self) -> list[ScoredPair]:
        """The result as a list of :class:`ScoredPair`."""
        return list(self)

    def pair_set(self) -> set[tuple[int, int]]:
        """The reported pairs as a set of ``(i, j)`` tuples."""
        return {(int(i), int(j)) for i, j in zip(self.left, self.right)}

    def similarity_map(self) -> dict[tuple[int, int], float]:
        """Mapping from pair to reported similarity."""
        return {
            (int(i), int(j)): float(s)
            for i, j, s in zip(self.left, self.right, self.similarities)
        }

    @property
    def total_time(self) -> float:
        """Total wall-clock time in seconds (0.0 when timings were not recorded)."""
        return float(self.timings.get("total", 0.0))

    def top(self, k: int = 10) -> list[ScoredPair]:
        """The ``k`` highest-similarity pairs."""
        if len(self) == 0 or k <= 0:
            return []
        order = np.argsort(-self.similarities, kind="stable")[:k]
        return [
            ScoredPair(int(self.left[idx]), int(self.right[idx]), float(self.similarities[idx]))
            for idx in order
        ]

    def __repr__(self) -> str:
        return (
            f"SearchResult(method={self.method!r}, n_pairs={len(self)}, "
            f"threshold={self.threshold}, measure={self.measure!r})"
        )
