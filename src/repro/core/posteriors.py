"""Posterior models: the three inference queries of Section 4.

Given the event ``M(m, n)`` ("m of the first n hashes agree"), every posterior
model answers:

1. ``prob_above_threshold(m, n, t)`` — Equation 3,
   ``Pr[S >= t | M(m, n)]``, used for pruning;
2. ``map_estimate(m, n)`` — Equation 4, the maximum-a-posteriori similarity
   estimate ``S_hat``;
3. ``concentration_probability(m, n, delta)`` — Equation 6,
   ``Pr[|S - S_hat| < delta | M(m, n)]``, used to decide when to stop hashing.

Two closed-form models are provided:

* :class:`BetaPosterior` for Jaccard similarity with a conjugate
  ``Beta(alpha, beta)`` prior — the posterior is
  ``Beta(m + alpha, n - m + beta)`` (Section 4.1);
* :class:`TruncatedCollisionPosterior` for cosine similarity with the uniform
  prior on the collision probability ``r in [0.5, 1]`` — the posterior density
  is the binomial likelihood truncated to ``[0.5, 1]`` and renormalised, and
  every quantity is evaluated with regularised incomplete beta functions and
  mapped back to cosine through ``r2c`` (Section 4.2).

:class:`GridCollisionPosterior` evaluates the same quantities by numerical
integration for an *arbitrary* prior density; it backs the appendix
experiment on prior sensitivity (Figure 5) and serves as an independent
cross-check of the closed forms in the test-suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np
from scipy.special import betainc, betaincc

from repro.core.priors import BetaPrior, UniformCollisionPrior
from repro.hashing.simhash import collision_to_cosine, cosine_to_collision

__all__ = [
    "PosteriorModel",
    "BetaPosterior",
    "TruncatedCollisionPosterior",
    "GridCollisionPosterior",
    "make_posterior",
]


def _validate_counts(m: int, n: int) -> None:
    if n < 0 or m < 0 or m > n:
        raise ValueError(f"invalid hash counts m={m}, n={n}; need 0 <= m <= n")


def _validate_counts_many(m: np.ndarray, n: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    m = np.asarray(m, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    m, n = np.broadcast_arrays(m, n)
    if np.any((n < 0) | (m < 0) | (m > n)):
        raise ValueError("invalid hash counts; need 0 <= m <= n element-wise")
    return m, n


class PosteriorModel(ABC):
    """Posterior distribution of the similarity given ``M(m, n)``.

    Every model answers the three scalar queries of Section 4 plus batched
    ``*_many`` variants taking arrays of ``(m, n)`` pairs.  The batched
    variants are required to be *bit-identical* to mapping the scalar method
    over the arrays (the equivalence property tests enforce this); the base
    class provides exactly that mapping as a fallback, and the closed-form
    models override it with vectorised special-function evaluations — the
    same ufuncs applied element-wise, hence the same floats.
    """

    @abstractmethod
    def prob_above_threshold(self, m: int, n: int, threshold: float) -> float:
        """``Pr[S >= threshold | M(m, n)]`` (Equation 3)."""

    @abstractmethod
    def map_estimate(self, m: int, n: int) -> float:
        """Maximum-a-posteriori similarity estimate (Equation 4)."""

    @abstractmethod
    def concentration_probability(self, m: int, n: int, delta: float) -> float:
        """``Pr[|S - S_hat| < delta | M(m, n)]`` (Equation 6)."""

    def is_concentrated(self, m: int, n: int, delta: float, gamma: float) -> bool:
        """Whether the estimate meets the accuracy requirement (guarantee 2)."""
        return self.concentration_probability(m, n, delta) >= 1.0 - gamma

    # ---------------- batched variants (scalar fallback) ---------------- #
    def prob_above_threshold_many(self, m, n, threshold: float) -> np.ndarray:
        """Vectorised :meth:`prob_above_threshold` over broadcastable ``m``/``n``."""
        m, n = _validate_counts_many(m, n)
        return np.array(
            [self.prob_above_threshold(int(mi), int(ni), threshold) for mi, ni in zip(m.ravel(), n.ravel())],
            dtype=np.float64,
        ).reshape(m.shape)

    def map_estimate_many(self, m, n) -> np.ndarray:
        """Vectorised :meth:`map_estimate` over broadcastable ``m``/``n``."""
        m, n = _validate_counts_many(m, n)
        return np.array(
            [self.map_estimate(int(mi), int(ni)) for mi, ni in zip(m.ravel(), n.ravel())],
            dtype=np.float64,
        ).reshape(m.shape)

    def concentration_probability_many(self, m, n, delta: float) -> np.ndarray:
        """Vectorised :meth:`concentration_probability` over broadcastable ``m``/``n``."""
        m, n = _validate_counts_many(m, n)
        return np.array(
            [self.concentration_probability(int(mi), int(ni), delta) for mi, ni in zip(m.ravel(), n.ravel())],
            dtype=np.float64,
        ).reshape(m.shape)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BetaPosterior(PosteriorModel):
    """Conjugate Beta posterior for similarities whose collision probability
    equals the similarity itself (Jaccard / minwise hashing).

    With prior ``Beta(alpha, beta)`` and observation ``M(m, n)`` the posterior
    is ``Beta(m + alpha, n - m + beta)``.
    """

    def __init__(self, prior: BetaPrior | None = None):
        self._prior = prior if prior is not None else BetaPrior(1.0, 1.0)

    @property
    def prior(self) -> BetaPrior:
        return self._prior

    def _posterior_params(self, m: int, n: int) -> tuple[float, float]:
        _validate_counts(m, n)
        return m + self._prior.alpha, (n - m) + self._prior.beta

    def posterior_density(self, s: np.ndarray | float, m: int, n: int) -> np.ndarray:
        """Posterior pdf evaluated at ``s`` (vectorised); used by tests/figures."""
        a, b = self._posterior_params(m, n)
        return BetaPrior(a, b).density(s)

    def prob_above_threshold(self, m: int, n: int, threshold: float) -> float:
        a, b = self._posterior_params(m, n)
        threshold = float(np.clip(threshold, 0.0, 1.0))
        return float(1.0 - betainc(a, b, threshold))

    def map_estimate(self, m: int, n: int) -> float:
        a, b = self._posterior_params(m, n)
        # Mode of Beta(a, b).  (The paper's expression has an off-by-one typo
        # in the denominator; this is the correct mode.)
        if a > 1.0 and b > 1.0:
            return (a - 1.0) / (a + b - 2.0)
        if a <= 1.0 and b > 1.0:
            return 0.0
        if a > 1.0 and b <= 1.0:
            return 1.0
        # a <= 1 and b <= 1: density is U-shaped / flat; use the mean.
        return a / (a + b)

    def concentration_probability(self, m: int, n: int, delta: float) -> float:
        if delta <= 0:
            return 0.0
        a, b = self._posterior_params(m, n)
        estimate = self.map_estimate(m, n)
        low = max(0.0, estimate - delta)
        high = min(1.0, estimate + delta)
        return float(betainc(a, b, high) - betainc(a, b, low))

    # ---------------- batched variants (closed form) ---------------- #
    def _posterior_params_many(self, m, n) -> tuple[np.ndarray, np.ndarray]:
        m, n = _validate_counts_many(m, n)
        return m + self._prior.alpha, (n - m) + self._prior.beta

    def prob_above_threshold_many(self, m, n, threshold: float) -> np.ndarray:
        a, b = self._posterior_params_many(m, n)
        threshold = float(np.clip(threshold, 0.0, 1.0))
        return 1.0 - betainc(a, b, threshold)

    def map_estimate_many(self, m, n) -> np.ndarray:
        a, b = self._posterior_params_many(m, n)
        # Same branch structure as the scalar map_estimate, evaluated with
        # the identical float64 expressions under each mask.
        result = np.empty(a.shape, dtype=np.float64)
        interior = (a > 1.0) & (b > 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(a - 1.0, a + b - 2.0, out=result, where=interior)
        result[(a <= 1.0) & (b > 1.0)] = 0.0
        result[(a > 1.0) & (b <= 1.0)] = 1.0
        boundary = (a <= 1.0) & (b <= 1.0)
        np.divide(a, a + b, out=result, where=boundary)
        return result

    def concentration_probability_many(self, m, n, delta: float) -> np.ndarray:
        a, b = self._posterior_params_many(m, n)
        if delta <= 0:
            return np.zeros(a.shape, dtype=np.float64)
        estimate = self.map_estimate_many(m, n)
        low = np.maximum(0.0, estimate - delta)
        high = np.minimum(1.0, estimate + delta)
        return betainc(a, b, high) - betainc(a, b, low)

    def __repr__(self) -> str:
        return f"BetaPosterior(prior=Beta({self._prior.alpha:.4g}, {self._prior.beta:.4g}))"


class TruncatedCollisionPosterior(PosteriorModel):
    """Posterior for cosine similarity via signed random projections.

    The likelihood is binomial in the collision probability
    ``r = 1 - theta / pi``; with a uniform prior on ``[low, high]``
    (``[0.5, 1]`` for non-negative data) the posterior density of ``r`` is

        p(r | M(m, n)) = r^m (1 - r)^(n - m) / (B_high(m+1, n-m+1) - B_low(m+1, n-m+1))

    All ratios of incomplete beta functions are evaluated with the
    *regularised* incomplete beta function ``betainc`` so the complete-beta
    normalisation cancels and no overflow can occur.  Every query is phrased
    in terms of the cosine similarity ``s = r2c(r)`` as in Section 4.2.
    """

    #: below this posterior mass on the support, closed-form incomplete-beta
    #: ratios lose too much precision and the numerical fallback is used
    _TAIL_MASS_CUTOFF = 1e-12
    #: below this CDF-difference value the subtraction has cancelled to the
    #: float64 resolution of the operands and the mass is recomputed from the
    #: survival function instead (stable for thin upper tails); masses above
    #: the guard keep the original expression bit for bit
    _CANCELLATION_GUARD = 1e-9

    def __init__(self, prior: UniformCollisionPrior | None = None):
        self._prior = prior if prior is not None else UniformCollisionPrior()
        self._grid_fallback: GridCollisionPosterior | None = None

    @property
    def prior(self) -> UniformCollisionPrior:
        return self._prior

    def _fallback(self) -> "GridCollisionPosterior":
        """Log-space numerical posterior used when the support holds almost no mass.

        When the observed agreement fraction lies far below the prior support
        (``m/n`` much less than 0.5), the normaliser
        ``B_high - B_low`` underflows and ratios of incomplete beta functions
        become meaningless; the grid posterior computes the same quantities
        stably in log space.  Such pairs are about to be pruned anyway, but
        the probabilities should still be sensible.
        """
        if self._grid_fallback is None:
            self._grid_fallback = GridCollisionPosterior(
                lambda r: np.ones_like(r), low=self._prior.low, high=self._prior.high
            )
        return self._grid_fallback

    def _mass(self, m: int, n: int, r_low: float, r_high: float) -> float:
        """Unnormalised posterior mass of ``[r_low, r_high]`` (regularised units).

        A thin upper tail makes ``betainc(.., r_high) - betainc(.., r_low)``
        cancel catastrophically (both operands round to 1.0 and the mass
        collapses to exactly 0 even when the true value is ~1e-18, which
        breaks monotonicity of ``prob_above_threshold`` in ``m``); masses
        below the cancellation guard are recomputed from the survival
        function ``betaincc``, which is exact in that regime.
        """
        a, b = m + 1.0, (n - m) + 1.0
        r_low = float(np.clip(r_low, 0.0, 1.0))
        r_high = float(np.clip(r_high, 0.0, 1.0))
        if r_high <= r_low:
            return 0.0
        mass = float(betainc(a, b, r_high) - betainc(a, b, r_low))
        if mass < self._CANCELLATION_GUARD:
            mass = max(0.0, float(betaincc(a, b, r_low) - betaincc(a, b, r_high)))
        return mass

    def _normaliser(self, m: int, n: int) -> float:
        return self._mass(m, n, self._prior.low, self._prior.high)

    def posterior_density_r(self, r: np.ndarray | float, m: int, n: int) -> np.ndarray:
        """Posterior pdf of the collision probability ``r`` (vectorised)."""
        _validate_counts(m, n)
        r = np.asarray(r, dtype=np.float64)
        a, b = m + 1.0, (n - m) + 1.0
        # Unnormalised Beta(a, b) density over the truncated support.
        norm = self._normaliser(m, n)
        density = BetaPrior(a, b).density(r)
        inside = (r >= self._prior.low) & (r <= self._prior.high)
        if norm <= 0.0:
            return np.where(inside, 0.0, 0.0)
        return np.where(inside, density / norm, 0.0)

    def prob_above_threshold(self, m: int, n: int, threshold: float) -> float:
        _validate_counts(m, n)
        threshold_r = float(cosine_to_collision(np.clip(threshold, 0.0, 1.0)))
        norm = self._normaliser(m, n)
        if norm <= self._TAIL_MASS_CUTOFF:
            return self._fallback().prob_above_threshold(m, n, threshold)
        mass = self._mass(m, n, max(threshold_r, self._prior.low), self._prior.high)
        return mass / norm

    def map_estimate(self, m: int, n: int) -> float:
        _validate_counts(m, n)
        if n == 0:
            # No data: the prior is flat, return the midpoint of the support.
            r_hat = 0.5 * (self._prior.low + self._prior.high)
        else:
            r_hat = float(np.clip(m / n, self._prior.low, self._prior.high))
        return float(collision_to_cosine(r_hat))

    def concentration_probability(self, m: int, n: int, delta: float) -> float:
        if delta <= 0:
            return 0.0
        _validate_counts(m, n)
        estimate = self.map_estimate(m, n)
        norm = self._normaliser(m, n)
        if norm <= self._TAIL_MASS_CUTOFF:
            return self._fallback().concentration_probability(m, n, delta)
        r_low = float(cosine_to_collision(max(-1.0, estimate - delta)))
        r_high = float(cosine_to_collision(min(1.0, estimate + delta)))
        r_low = max(r_low, self._prior.low)
        r_high = min(r_high, self._prior.high)
        return self._mass(m, n, r_low, r_high) / norm

    # ---------------- batched variants (closed form) ---------------- #
    def _mass_many(
        self, a: np.ndarray, b: np.ndarray, r_low: np.ndarray, r_high: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`_mass` with per-element posterior parameters.

        Applies the same survival-function recomputation as the scalar path
        to elements whose CDF difference cancelled below the guard, so the
        batched probabilities stay bit-identical to the scalar ones.
        """
        r_low = np.clip(r_low, 0.0, 1.0)
        r_high = np.clip(r_high, 0.0, 1.0)
        mass = betainc(a, b, r_high) - betainc(a, b, r_low)
        cancelled = mass < self._CANCELLATION_GUARD
        if np.any(cancelled):
            stable = np.maximum(0.0, betaincc(a, b, r_low) - betaincc(a, b, r_high))
            mass = np.where(cancelled, stable, mass)
        return np.where(r_high <= r_low, 0.0, mass)

    def _normaliser_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        low = np.broadcast_to(self._prior.low, a.shape)
        high = np.broadcast_to(self._prior.high, a.shape)
        return self._mass_many(a, b, low, high)

    def prob_above_threshold_many(self, m, n, threshold: float) -> np.ndarray:
        m, n = _validate_counts_many(m, n)
        a, b = m + 1.0, (n - m) + 1.0
        threshold_r = float(cosine_to_collision(np.clip(threshold, 0.0, 1.0)))
        norm = self._normaliser_many(a, b)
        lower = np.broadcast_to(max(threshold_r, self._prior.low), a.shape)
        mass = self._mass_many(a, b, lower, np.broadcast_to(self._prior.high, a.shape))
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(norm > self._TAIL_MASS_CUTOFF, mass / np.where(norm > 0, norm, 1.0), 0.0)
        # Elements whose support mass underflows fall back to the stable
        # log-space grid posterior, exactly like the scalar path.
        for index in np.flatnonzero(norm.ravel() <= self._TAIL_MASS_CUTOFF):
            result.flat[index] = self._fallback().prob_above_threshold(
                int(m.flat[index]), int(n.flat[index]), threshold
            )
        return result

    def map_estimate_many(self, m, n) -> np.ndarray:
        m, n = _validate_counts_many(m, n)
        midpoint = 0.5 * (self._prior.low + self._prior.high)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(n > 0, m / np.where(n > 0, n, 1), midpoint)
        r_hat = np.where(n > 0, np.clip(ratio, self._prior.low, self._prior.high), midpoint)
        return np.asarray(collision_to_cosine(r_hat), dtype=np.float64)

    def concentration_probability_many(self, m, n, delta: float) -> np.ndarray:
        m, n = _validate_counts_many(m, n)
        if delta <= 0:
            return np.zeros(m.shape, dtype=np.float64)
        a, b = m + 1.0, (n - m) + 1.0
        estimate = self.map_estimate_many(m, n)
        norm = self._normaliser_many(a, b)
        r_low = np.asarray(cosine_to_collision(np.maximum(-1.0, estimate - delta)))
        r_high = np.asarray(cosine_to_collision(np.minimum(1.0, estimate + delta)))
        r_low = np.maximum(r_low, self._prior.low)
        r_high = np.minimum(r_high, self._prior.high)
        mass = self._mass_many(a, b, r_low, r_high)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(norm > self._TAIL_MASS_CUTOFF, mass / np.where(norm > 0, norm, 1.0), 0.0)
        for index in np.flatnonzero(norm.ravel() <= self._TAIL_MASS_CUTOFF):
            result.flat[index] = self._fallback().concentration_probability(
                int(m.flat[index]), int(n.flat[index]), delta
            )
        return result

    def __repr__(self) -> str:
        return (
            f"TruncatedCollisionPosterior(support=[{self._prior.low}, {self._prior.high}])"
        )


class GridCollisionPosterior(PosteriorModel):
    """Numerical posterior over the collision probability for an arbitrary prior.

    Used for the appendix's prior-sensitivity study (priors proportional to
    ``r^-3``, ``1`` and ``r^3`` on ``[0.5, 1]``) and as an independent check of
    :class:`TruncatedCollisionPosterior`.  The posterior is represented on a
    uniform grid over the support and integrated with the trapezoidal rule.

    Parameters
    ----------
    prior_density:
        Callable returning the (possibly unnormalised) prior density at an
        array of ``r`` values.
    low, high:
        Support of the prior.
    grid_size:
        Number of grid points; 4097 gives ~1e-7 accuracy for the smooth
        densities involved.
    to_similarity / from_similarity:
        Mappings between the collision probability and the similarity the
        caller cares about.  Defaults to the cosine mappings ``r2c``/``c2r``;
        pass identities to work directly on the collision scale.
    """

    def __init__(
        self,
        prior_density: Callable[[np.ndarray], np.ndarray],
        low: float = 0.5,
        high: float = 1.0,
        grid_size: int = 4097,
        to_similarity: Callable[[np.ndarray], np.ndarray] | None = None,
        from_similarity: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        if not (0.0 <= low < high <= 1.0):
            raise ValueError(f"support must satisfy 0 <= low < high <= 1, got [{low}, {high}]")
        if grid_size < 3:
            raise ValueError(f"grid_size must be at least 3, got {grid_size}")
        self._low = float(low)
        self._high = float(high)
        self._grid = np.linspace(self._low, self._high, int(grid_size))
        prior_values = np.asarray(prior_density(self._grid), dtype=np.float64)
        if np.any(prior_values < 0.0) or not np.all(np.isfinite(prior_values)):
            raise ValueError("prior density must be finite and non-negative on the support")
        total = np.trapezoid(prior_values, self._grid)
        if total <= 0.0:
            raise ValueError("prior density integrates to zero on the support")
        self._prior_values = prior_values / total
        self._to_similarity = to_similarity if to_similarity is not None else collision_to_cosine
        self._from_similarity = from_similarity if from_similarity is not None else cosine_to_collision

    @property
    def grid(self) -> np.ndarray:
        return self._grid

    def posterior_density_r(self, m: int, n: int) -> np.ndarray:
        """Normalised posterior density evaluated on the grid."""
        _validate_counts(m, n)
        r = self._grid
        with np.errstate(divide="ignore", invalid="ignore"):
            log_likelihood = m * np.log(np.clip(r, 1e-300, None)) + (n - m) * np.log(
                np.clip(1.0 - r, 1e-300, None)
            )
        log_likelihood -= log_likelihood.max()
        unnormalised = np.exp(log_likelihood) * self._prior_values
        total = np.trapezoid(unnormalised, r)
        if total <= 0.0:
            return np.zeros_like(r)
        return unnormalised / total

    def prob_above_threshold(self, m: int, n: int, threshold: float) -> float:
        density = self.posterior_density_r(m, n)
        threshold_r = float(np.clip(self._from_similarity(threshold), self._low, self._high))
        mask = self._grid >= threshold_r
        if not np.any(mask):
            return 0.0
        return float(np.trapezoid(density[mask], self._grid[mask]))

    def map_estimate(self, m: int, n: int) -> float:
        density = self.posterior_density_r(m, n)
        r_hat = float(self._grid[int(np.argmax(density))])
        return float(self._to_similarity(r_hat))

    def concentration_probability(self, m: int, n: int, delta: float) -> float:
        if delta <= 0:
            return 0.0
        density = self.posterior_density_r(m, n)
        estimate = self.map_estimate(m, n)
        r_low = float(np.clip(self._from_similarity(estimate - delta), self._low, self._high))
        r_high = float(np.clip(self._from_similarity(estimate + delta), self._low, self._high))
        mask = (self._grid >= r_low) & (self._grid <= r_high)
        if not np.any(mask):
            return 0.0
        return float(np.trapezoid(density[mask], self._grid[mask]))


def make_posterior(measure_name: str, prior=None) -> PosteriorModel:
    """Build the posterior model matching a similarity measure.

    ``"jaccard"`` maps to :class:`BetaPosterior`; ``"cosine"`` and
    ``"binary_cosine"`` map to :class:`TruncatedCollisionPosterior`.
    """
    if measure_name == "jaccard":
        if prior is not None and not isinstance(prior, BetaPrior):
            raise TypeError("Jaccard BayesLSH expects a BetaPrior")
        return BetaPosterior(prior)
    if measure_name in ("cosine", "binary_cosine"):
        if prior is not None and not isinstance(prior, UniformCollisionPrior):
            raise TypeError("cosine BayesLSH expects a UniformCollisionPrior")
        return TruncatedCollisionPosterior(prior)
    raise ValueError(
        f"no posterior model for measure {measure_name!r}; expected jaccard, cosine or binary_cosine"
    )
