"""Pre-computation of the minimum-matches pruning table (Section 4.3).

Line 10 of Algorithm 1 prunes a pair when ``Pr[S >= t | M(m, n)] < epsilon``.
Because that probability is monotone non-decreasing in ``m`` for fixed ``n``,
the test is equivalent to ``m < minMatches(n)`` where

    minMatches(n) = min { m : Pr[S >= t | M(m, n)] >= epsilon }

The table is computed once per (posterior, threshold, epsilon) by binary
search over ``m`` for every ``n`` that the algorithm will actually encounter
(multiples of the batch size ``k`` up to the hash budget), removing all
per-pair inference from the pruning step.
"""

from __future__ import annotations

import numpy as np

from repro.core.posteriors import PosteriorModel

__all__ = ["MinMatchesTable"]


class MinMatchesTable:
    """Pre-computed ``minMatches(n)`` for all the ``n`` values a run will see.

    Parameters
    ----------
    posterior:
        The posterior model (Beta for Jaccard, truncated collision posterior
        for cosine).
    threshold:
        Similarity threshold ``t``.
    epsilon:
        Recall parameter.
    k:
        Hash batch size; the table holds entries for ``n = k, 2k, ...``.
    max_hashes:
        Largest ``n`` in the table.
    """

    def __init__(
        self,
        posterior: PosteriorModel,
        threshold: float,
        epsilon: float,
        k: int,
        max_hashes: int,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if max_hashes < k:
            raise ValueError(f"max_hashes ({max_hashes}) must be at least k ({k})")
        self._posterior = posterior
        self._threshold = float(threshold)
        self._epsilon = float(epsilon)
        self._k = int(k)
        self._max_hashes = int(max_hashes)
        self._ns = np.arange(k, max_hashes + 1, k, dtype=np.int64)
        self._table = {int(n): self._compute_min_matches(int(n)) for n in self._ns}

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def checkpoints(self) -> np.ndarray:
        """The ``n`` values for which the table holds entries."""
        return self._ns

    def _compute_min_matches(self, n: int) -> int:
        """Binary search for the smallest ``m`` with Pr[S >= t | M(m, n)] >= epsilon.

        Returns ``n + 1`` when even ``m = n`` cannot reach the target, which
        makes ``passes()`` False for every possible match count.
        """
        posterior = self._posterior
        if posterior.prob_above_threshold(n, n, self._threshold) < self._epsilon:
            return n + 1
        if posterior.prob_above_threshold(0, n, self._threshold) >= self._epsilon:
            return 0
        low, high = 0, n  # invariant: prob(low) < eps <= prob(high)
        while high - low > 1:
            mid = (low + high) // 2
            if posterior.prob_above_threshold(mid, n, self._threshold) >= self._epsilon:
                high = mid
            else:
                low = mid
        return high

    def min_matches(self, n: int) -> int:
        """``minMatches(n)``; computed on demand for ``n`` outside the table."""
        entry = self._table.get(int(n))
        if entry is None:
            entry = self._compute_min_matches(int(n))
            self._table[int(n)] = entry
        return entry

    def passes(self, m: int, n: int) -> bool:
        """True when a pair with ``m`` of ``n`` matches survives the pruning test."""
        return m >= self.min_matches(n)

    def passes_many(self, matches: np.ndarray, n: int) -> np.ndarray:
        """Vectorised :meth:`passes` for an array of match counts at one ``n``."""
        return np.asarray(matches) >= self.min_matches(n)

    def as_array(self) -> np.ndarray:
        """The table as an ``(n, minMatches(n))`` array over the checkpoints."""
        return np.array([[int(n), self._table[int(n)]] for n in self._ns], dtype=np.int64)
