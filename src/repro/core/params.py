"""User-facing parameter objects for BayesLSH and BayesLSH-Lite.

The paper's headline usability claim is that its three parameters map
directly onto output-quality guarantees:

* ``epsilon`` — recall knob: every pair whose posterior probability of being
  a true positive exceeds ``epsilon`` is kept (guarantee 1);
* ``delta`` and ``gamma`` — accuracy knobs: every reported similarity
  estimate is within ``delta`` of the truth with probability at least
  ``1 - gamma`` (guarantee 2).

BayesLSH-Lite computes exact similarities for unpruned pairs, so it drops
``delta``/``gamma`` and instead takes ``h``, the maximum number of hashes
spent on pruning before falling back to an exact computation.

Both parameter objects also carry the batch size ``k`` (the number of hashes
compared per round, 32 in the paper because a cosine hash is one bit and 32
of them fill a machine word) and a cap on the total number of hashes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BayesLSHParams", "BayesLSHLiteParams"]


def _check_unit_interval(name: str, value: float, *, open_left: bool = True) -> None:
    low_ok = value > 0.0 if open_left else value >= 0.0
    if not (low_ok and value < 1.0):
        bracket = "(0, 1)" if open_left else "[0, 1)"
        raise ValueError(f"{name} must lie in {bracket}, got {value}")


@dataclass(frozen=True)
class BayesLSHParams:
    """Parameters of Algorithm 1 (BayesLSH).

    Attributes
    ----------
    threshold:
        Similarity threshold ``t``; only pairs with similarity ``>= t`` are
        of interest.
    epsilon:
        Recall parameter: prune a pair as soon as
        ``Pr[S >= t | M(m, n)] < epsilon``.  Smaller values mean higher
        recall (fewer false negatives) at the cost of weaker pruning.
    delta, gamma:
        Accuracy parameters: keep comparing hashes until the similarity
        estimate satisfies ``Pr[|S - S_hat| < delta] >= 1 - gamma``.
    k:
        Number of hashes compared per round (32 in the paper).
    max_hashes:
        Upper bound on the number of hashes examined per pair.  If a pair is
        neither pruned nor concentrated by then, the current MAP estimate is
        emitted.  2048 matches the paper's LSH-Approx budget for cosine.
    """

    threshold: float
    epsilon: float = 0.03
    delta: float = 0.05
    gamma: float = 0.03
    k: int = 32
    max_hashes: int = 2048

    def __post_init__(self):
        _check_unit_interval("threshold", self.threshold)
        _check_unit_interval("epsilon", self.epsilon)
        _check_unit_interval("delta", self.delta)
        _check_unit_interval("gamma", self.gamma)
        if self.k <= 0:
            raise ValueError(f"k must be a positive integer, got {self.k}")
        if self.max_hashes < self.k:
            raise ValueError(
                f"max_hashes ({self.max_hashes}) must be at least k ({self.k})"
            )

    def with_threshold(self, threshold: float) -> "BayesLSHParams":
        """A copy of these parameters with a different similarity threshold."""
        return replace(self, threshold=threshold)

    @property
    def n_rounds(self) -> int:
        """Number of comparison rounds implied by ``max_hashes`` and ``k``."""
        return self.max_hashes // self.k


@dataclass(frozen=True)
class BayesLSHLiteParams:
    """Parameters of Algorithm 2 (BayesLSH-Lite).

    Attributes
    ----------
    threshold:
        Similarity threshold ``t``.
    epsilon:
        Recall parameter, as in :class:`BayesLSHParams`.
    h:
        Maximum number of hashes examined for pruning; pairs that survive all
        ``h`` hashes have their similarity computed exactly.  The paper uses
        128 for cosine and 64 for Jaccard.
    k:
        Number of hashes compared per round.
    """

    threshold: float
    epsilon: float = 0.03
    h: int = 128
    k: int = 32

    def __post_init__(self):
        _check_unit_interval("threshold", self.threshold)
        _check_unit_interval("epsilon", self.epsilon)
        if self.k <= 0:
            raise ValueError(f"k must be a positive integer, got {self.k}")
        if self.h < self.k:
            raise ValueError(f"h ({self.h}) must be at least k ({self.k})")

    def with_threshold(self, threshold: float) -> "BayesLSHLiteParams":
        """A copy of these parameters with a different similarity threshold."""
        return replace(self, threshold=threshold)

    @property
    def n_rounds(self) -> int:
        """Number of comparison rounds implied by ``h`` and ``k``."""
        return self.h // self.k
