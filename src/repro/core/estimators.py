"""Classical (frequentist) similarity estimation for LSH — Section 3.

The standard approach estimates the similarity of a candidate pair as the
fraction of agreeing hashes, ``s_hat = m / n``, with ``n`` fixed in advance
for the whole dataset.  This module provides that estimator plus the analysis
the paper uses to motivate BayesLSH:

* :func:`probability_within_delta` — the exact probability that the
  ``n``-hash estimate lands within ``delta`` of the true similarity,
  ``Pr[|s_hat_n - s| < delta]`` as a binomial tail sum;
* :func:`minimum_hashes_for_accuracy` — the smallest ``n`` achieving a
  ``1 - gamma`` guarantee, which is what Figure 1 plots against the true
  similarity (350 hashes at ``s = 0.5`` versus 16 at ``s = 0.95`` for
  ``delta = gamma = 0.05``).

These functions operate on the *collision* scale: for Jaccard the collision
probability is the similarity itself, for cosine it is ``r = 1 - theta/pi``.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

__all__ = [
    "mle_estimate",
    "estimate_variance",
    "probability_within_delta",
    "minimum_hashes_for_accuracy",
    "required_hashes_curve",
]


def mle_estimate(m: int, n: int) -> float:
    """Maximum likelihood estimate of the collision probability: ``m / n``."""
    if n < 0 or m < 0 or m > n:
        raise ValueError(f"invalid hash counts m={m}, n={n}; need 0 <= m <= n")
    if n == 0:
        return 0.0
    return m / n


def estimate_variance(similarity: float, n: int) -> float:
    """Variance of the MLE, ``s (1 - s) / n`` — similarity-dependent."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must lie in [0, 1], got {similarity}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return similarity * (1.0 - similarity) / n


def probability_within_delta(
    similarity: float, n: int, delta: float, boundary: str = "strict"
) -> float:
    """``Pr[|s_hat_n - s| < delta]`` for the ``n``-hash MLE at true similarity ``s``.

    The estimate is within ``delta`` exactly when the number of matches falls
    in ``((s - delta) * n, (s + delta) * n)``; the probability is a binomial
    tail difference.

    ``boundary`` selects how the non-integer interval endpoints are rounded:

    * ``"strict"`` (default) counts only matches with ``|m/n - s| < delta``
      exactly, which is the criterion the BayesLSH concentration test uses;
    * ``"lenient"`` counts ``floor((s - delta) n) <= m <= ceil((s + delta) n)``,
      the reading of the paper's summation in Section 3.1 that reproduces the
      quoted "16 hashes at similarity 0.95" data point of Figure 1.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must lie in [0, 1], got {similarity}")
    if boundary not in ("strict", "lenient"):
        raise ValueError(f"boundary must be 'strict' or 'lenient', got {boundary!r}")
    if delta <= 0.0:
        return 0.0
    if n <= 0:
        return 0.0
    if boundary == "strict":
        # Matches m with |m/n - s| < delta  <=>  n(s - delta) < m < n(s + delta).
        lower = int(np.floor(n * (similarity - delta))) + 1  # smallest admissible m
        upper = int(np.ceil(n * (similarity + delta))) - 1  # largest admissible m
    else:
        lower = int(np.floor(n * (similarity - delta)))
        upper = int(np.ceil(n * (similarity + delta)))
    lower = max(lower, 0)
    upper = min(upper, n)
    if upper < lower:
        return 0.0
    cdf_upper = binom.cdf(upper, n, similarity)
    cdf_lower = binom.cdf(lower - 1, n, similarity) if lower > 0 else 0.0
    return float(cdf_upper - cdf_lower)


def minimum_hashes_for_accuracy(
    similarity: float,
    delta: float = 0.05,
    gamma: float = 0.05,
    max_hashes: int = 100_000,
    step: int = 1,
    boundary: str = "strict",
) -> int:
    """Smallest ``n`` such that ``Pr[|s_hat_n - s| < delta] >= 1 - gamma``.

    This is the quantity Figure 1 plots as a function of the true similarity.
    Note the probability is not perfectly monotone in ``n`` (binomial
    granularity), so we scan rather than bisect.

    Returns ``max_hashes`` if the requirement is not met within the budget.
    """
    if delta <= 0 or delta >= 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if gamma <= 0 or gamma >= 1:
        raise ValueError(f"gamma must lie in (0, 1), got {gamma}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    target = 1.0 - gamma
    for n in range(step, max_hashes + 1, step):
        if probability_within_delta(similarity, n, delta, boundary=boundary) >= target:
            return n
    return max_hashes


def required_hashes_curve(
    similarities: np.ndarray,
    delta: float = 0.05,
    gamma: float = 0.05,
    max_hashes: int = 10_000,
    step: int = 1,
    boundary: str = "strict",
) -> np.ndarray:
    """Vector of :func:`minimum_hashes_for_accuracy` values (Figure 1's curve)."""
    similarities = np.asarray(similarities, dtype=np.float64)
    return np.array(
        [
            minimum_hashes_for_accuracy(
                float(s),
                delta=delta,
                gamma=gamma,
                max_hashes=max_hashes,
                step=step,
                boundary=boundary,
            )
            for s in similarities
        ],
        dtype=np.int64,
    )
