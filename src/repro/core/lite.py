"""Algorithm 2: BayesLSH-Lite — Bayesian pruning with exact verification.

BayesLSH-Lite uses the same early-pruning test as BayesLSH but never
*estimates* similarities: pairs that survive ``h`` hashes' worth of pruning
have their similarity computed exactly and are output only if it exceeds the
threshold.  This trades the ``delta``/``gamma`` accuracy machinery for a
single extra parameter ``h`` and is the faster variant whenever exact
similarity computations are cheap (binary data, short vectors, high
thresholds).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.bayeslsh import VerificationOutput, _ACTIVE, _PRUNED
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHLiteParams
from repro.core.posteriors import PosteriorModel
from repro.hashing.base import HashFamily

__all__ = ["BayesLSHLite"]


class BayesLSHLite:
    """The BayesLSH-Lite candidate verifier (Algorithm 2).

    Parameters
    ----------
    family:
        Hash family bound to the vector collection.
    posterior:
        Posterior model used for the pruning test.
    params:
        ``threshold`` / ``epsilon`` / ``h`` / ``k``.
    exact_similarity:
        Callable ``(i, j) -> float`` computing the exact similarity of a pair
        of rows; invoked once per pair that survives pruning.
    exact_similarity_many:
        Optional batched variant taking parallel index arrays and returning
        an array of similarities; when provided, survivors are verified in
        one call instead of one Python call per pair.  The caller must
        guarantee it returns bit-for-bit the same floats as
        ``exact_similarity`` — the ``> threshold`` emission test is exact,
        so even last-ulp rounding differences change the output pair set.
    """

    def __init__(
        self,
        family: HashFamily,
        posterior: PosteriorModel,
        params: BayesLSHLiteParams,
        exact_similarity: Callable[[int, int], float],
        exact_similarity_many=None,
    ):
        self._family = family
        self._posterior = posterior
        self._params = params
        self._exact_similarity = exact_similarity
        self._exact_similarity_many = exact_similarity_many
        self._min_matches = MinMatchesTable(
            posterior,
            threshold=params.threshold,
            epsilon=params.epsilon,
            k=params.k,
            max_hashes=params.h,
        )

    @property
    def params(self) -> BayesLSHLiteParams:
        return self._params

    @property
    def min_matches_table(self) -> MinMatchesTable:
        return self._min_matches

    def verify(self, left, right) -> VerificationOutput:
        """Verify candidate pairs given as parallel index arrays.

        Pairs surviving the pruning rounds are checked exactly; only pairs
        whose exact similarity exceeds the threshold are output, and the
        reported "estimates" are those exact values.
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have the same shape")
        n_pairs = len(left)
        params = self._params

        status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
        matches = np.zeros(n_pairs, dtype=np.int64)
        trace: list[tuple[int, int]] = []
        hash_comparisons = 0

        if n_pairs:
            for round_index in range(params.n_rounds):
                active = np.flatnonzero(status == _ACTIVE)
                if len(active) == 0:
                    break
                n_prev = round_index * params.k
                n_now = n_prev + params.k
                store = self._family.signatures(n_now)
                new_matches = store.count_matches_many(
                    left[active], right[active], n_prev, n_now
                )
                hash_comparisons += len(active) * params.k
                matches[active] += new_matches

                keep_mask = self._min_matches.passes_many(matches[active], n_now)
                status[active[~keep_mask]] = _PRUNED

                n_alive = int(np.sum(status != _PRUNED))
                trace.append((n_now, n_alive))

        survivors = np.flatnonzero(status != _PRUNED)
        if self._exact_similarity_many is not None:
            exact_values = np.asarray(
                self._exact_similarity_many(left[survivors], right[survivors]),
                dtype=np.float64,
            )
        else:
            exact_values = np.array(
                [self._exact_similarity(int(left[idx]), int(right[idx])) for idx in survivors],
                dtype=np.float64,
            )
        above = exact_values > params.threshold
        return VerificationOutput(
            left=left[survivors][above],
            right=right[survivors][above],
            estimates=exact_values[above],
            n_candidates=n_pairs,
            n_pruned=int(np.sum(status == _PRUNED)),
            trace=trace,
            hash_comparisons=hash_comparisons,
            exact_computations=len(survivors),
        )
