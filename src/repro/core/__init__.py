"""The paper's contribution: Bayesian candidate pruning and similarity estimation.

Layout
------
``params``
    The user-facing knobs (``threshold``, ``epsilon``, ``delta``, ``gamma``,
    hash batch size ``k``, BayesLSH-Lite's ``h``).
``priors``
    Prior distributions over the similarity: the conjugate Beta prior for
    Jaccard (with method-of-moments fitting from a sample of candidate
    similarities) and the uniform prior on the collision probability for
    cosine.
``posteriors``
    Posterior models implementing the three inference queries of Section 4:
    Pr[S >= t | M(m, n)] (Equation 3), the MAP estimate (Equation 4) and the
    concentration probability (Equation 6).
``estimators``
    The classical (frequentist) machinery of Section 3: the maximum
    likelihood estimator ``m / n`` and the analysis of how many hashes it
    needs for a given accuracy (Figure 1).
``min_matches`` / ``concentration_cache``
    The two inference-avoidance optimisations of Section 4.3.
``bayeslsh`` / ``lite``
    Algorithms 1 and 2.
"""

from repro.core.params import BayesLSHParams, BayesLSHLiteParams
from repro.core.priors import BetaPrior, UniformCollisionPrior, fit_beta_prior
from repro.core.posteriors import (
    PosteriorModel,
    BetaPosterior,
    TruncatedCollisionPosterior,
    GridCollisionPosterior,
    make_posterior,
)
from repro.core.estimators import (
    mle_estimate,
    probability_within_delta,
    minimum_hashes_for_accuracy,
)
from repro.core.min_matches import MinMatchesTable
from repro.core.concentration_cache import ConcentrationCache
from repro.core.bayeslsh import BayesLSH, VerificationOutput
from repro.core.lite import BayesLSHLite

__all__ = [
    "BayesLSH",
    "BayesLSHLite",
    "BayesLSHLiteParams",
    "BayesLSHParams",
    "BetaPosterior",
    "BetaPrior",
    "ConcentrationCache",
    "GridCollisionPosterior",
    "MinMatchesTable",
    "PosteriorModel",
    "TruncatedCollisionPosterior",
    "UniformCollisionPrior",
    "VerificationOutput",
    "fit_beta_prior",
    "make_posterior",
    "minimum_hashes_for_accuracy",
    "mle_estimate",
    "probability_within_delta",
]
