"""Prior distributions over the similarity of a candidate pair.

Two priors appear in the paper:

* For **Jaccard** similarity the likelihood is binomial in the similarity
  itself, so the conjugate ``Beta(alpha, beta)`` prior keeps the posterior in
  closed form.  The parameters can either be left at ``alpha = beta = 1``
  (uniform) or fitted by the method of moments to a random sample of
  candidate-pair similarities produced by the candidate generation algorithm
  (Section 4.1).
* For **cosine** similarity the likelihood is binomial in the *collision
  probability* ``r in [0.5, 1]``, for which a Beta prior is no longer
  conjugate; the paper uses the uniform prior on ``[0.5, 1]`` and shows
  (appendix) that the data quickly swamps the prior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "BetaPrior",
    "UniformCollisionPrior",
    "fit_beta_prior",
    "sample_pair_similarities",
]


@dataclass(frozen=True)
class BetaPrior:
    """A ``Beta(alpha, beta)`` prior over a similarity in ``[0, 1]``."""

    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self):
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(
                f"Beta prior parameters must be positive, got alpha={self.alpha}, beta={self.beta}"
            )

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total * total * (total + 1.0))

    def density(self, s: np.ndarray | float) -> np.ndarray | float:
        """Prior probability density at ``s`` (vectorised)."""
        from scipy.special import beta as beta_function

        s = np.asarray(s, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = (
                s ** (self.alpha - 1.0)
                * (1.0 - s) ** (self.beta - 1.0)
                / beta_function(self.alpha, self.beta)
            )
        return np.where((s < 0.0) | (s > 1.0), 0.0, values)


@dataclass(frozen=True)
class UniformCollisionPrior:
    """The uniform prior over the cosine collision probability ``r``.

    The support defaults to ``[0.5, 1]``: for non-negative vectors the cosine
    similarity is non-negative, hence the angle is at most ``pi/2`` and
    ``r = 1 - theta/pi >= 0.5``.
    """

    low: float = 0.5
    high: float = 1.0

    def __post_init__(self):
        if not (0.0 <= self.low < self.high <= 1.0):
            raise ValueError(
                f"prior support must satisfy 0 <= low < high <= 1, got [{self.low}, {self.high}]"
            )

    def density(self, r: np.ndarray | float) -> np.ndarray | float:
        """Prior probability density at ``r`` (vectorised)."""
        r = np.asarray(r, dtype=np.float64)
        inside = (r >= self.low) & (r <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)


def fit_beta_prior(
    similarities: Iterable[float] | Sequence[float] | np.ndarray,
    fallback: BetaPrior | None = None,
) -> BetaPrior:
    """Fit a Beta prior to sampled candidate-pair similarities by method of moments.

    Following Section 4.1: with sample mean ``s_bar`` and (biased) sample
    variance ``s_var``,

        alpha = s_bar * (s_bar * (1 - s_bar) / s_var - 1)
        beta  = (1 - s_bar) * (s_bar * (1 - s_bar) / s_var - 1)

    Degenerate samples (fewer than two points, zero variance, mean at 0 or 1,
    or variance too large for a valid Beta) fall back to the uniform prior
    ``Beta(1, 1)`` (or the supplied ``fallback``).
    """
    if fallback is None:
        fallback = BetaPrior(1.0, 1.0)
    values = np.asarray(list(similarities), dtype=np.float64)
    if values.size < 2:
        return fallback
    if np.any((values < 0.0) | (values > 1.0)):
        raise ValueError("similarities must lie in [0, 1] to fit a Beta prior")
    mean = float(values.mean())
    variance = float(values.var())  # biased estimator, as in the paper
    if variance <= 1e-12 or mean <= 0.0 or mean >= 1.0:
        # Degenerate (all samples essentially equal): method of moments would
        # produce absurdly peaked parameters; fall back to the uniform prior.
        return fallback
    scale = mean * (1.0 - mean) / variance - 1.0
    if scale <= 0.0:
        # Sample variance exceeds that of any Beta with this mean.
        return fallback
    alpha = mean * scale
    beta = (1.0 - mean) * scale
    if alpha <= 0.0 or beta <= 0.0:
        return fallback
    return BetaPrior(alpha=alpha, beta=beta)


def sample_pair_similarities(
    pairs: Sequence[tuple[int, int]],
    exact_similarity,
    sample_size: int = 1000,
    seed: int = 0,
) -> np.ndarray:
    """Exact similarities of a uniform random sample of candidate pairs.

    Used to fit the Beta prior for Jaccard BayesLSH.  ``exact_similarity`` is
    a callable ``(i, j) -> float``.
    """
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    n_pairs = len(pairs)
    if n_pairs == 0:
        return np.zeros(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    if n_pairs <= sample_size:
        chosen = range(n_pairs)
    else:
        chosen = rng.choice(n_pairs, size=sample_size, replace=False)
    return np.array([exact_similarity(*pairs[int(idx)]) for idx in chosen], dtype=np.float64)
