"""Cache of concentration-test outcomes (Section 4.3).

Line 15 of Algorithm 1 stops comparing hashes for a pair once the similarity
estimate is sufficiently concentrated:
``Pr[|S - S_hat| < delta | M(m, n)] >= 1 - gamma``.  The outcome depends only
on the pair's match counts ``(m, n)``, never on the pair itself, so the
decisions are shared across all pairs.

The cache stores one *decision row* per ``n``: an array over ``m = 0 .. n``
holding "concentrated?" (or "not computed yet").  Batched queries answer by
array lookup; fresh ``m`` values are resolved with **one** vectorised
posterior call (:meth:`PosteriorModel.concentration_probability_many`) per
batch instead of a Python loop over pairs.

A note on why this is a *row* table rather than a single ``minConcentrated(n)``
threshold per ``n`` (the analogue of
:class:`~repro.core.min_matches.MinMatchesTable`): the concentration test is
**not** monotone in ``m`` for fixed ``n``.  The posterior of a pair with very
few matches piles up against the similarity-0 boundary, so the mass within
``delta`` of the (boundary) mode can exceed ``1 - gamma`` at tiny ``m``, dip
below it for intermediate ``m`` where the posterior variance peaks, and only
then rise monotonically towards ``m = n``.  A single threshold would flip
decisions for the low-``m`` band, so the cache keeps the exact per-``m``
decision instead — still O(1) per query, still at most ``n + 1`` inferences
per ``n``, and bit-identical to evaluating Equation 6 per pair.
"""

from __future__ import annotations

import numpy as np

from repro.core.posteriors import PosteriorModel

__all__ = ["ConcentrationCache"]

#: decision-row states
_UNKNOWN, _NO, _YES = -1, 0, 1


class ConcentrationCache:
    """Memoised "is the estimate concentrated enough?" test keyed by ``(m, n)``.

    Parameters
    ----------
    posterior:
        Posterior model providing :meth:`concentration_probability` and its
        batched variant.
    delta, gamma:
        Accuracy parameters: the test passes when the posterior places at
        least ``1 - gamma`` probability within ``delta`` of the MAP estimate.
    """

    def __init__(self, posterior: PosteriorModel, delta: float, gamma: float):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must lie in (0, 1), got {gamma}")
        self._posterior = posterior
        self._delta = float(delta)
        self._gamma = float(gamma)
        self._rows: dict[int, np.ndarray] = {}
        self._hits = 0
        self._misses = 0

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def hits(self) -> int:
        """Number of queries answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of ``(m, n)`` keys that required fresh inference."""
        return self._misses

    def __len__(self) -> int:
        return int(sum(np.count_nonzero(row != _UNKNOWN) for row in self._rows.values()))

    def _row(self, n: int) -> np.ndarray:
        row = self._rows.get(n)
        if row is None:
            row = np.full(n + 1, _UNKNOWN, dtype=np.int8)
            self._rows[n] = row
        return row

    def is_concentrated(self, m: int, n: int) -> bool:
        """Whether the estimate after ``m`` of ``n`` matches meets the accuracy target."""
        m, n = int(m), int(n)
        if not 0 <= m <= n:
            # Delegate the error to the posterior for a consistent message.
            self._posterior.concentration_probability(m, n, self._delta)
        row = self._row(n)
        state = row[m]
        if state != _UNKNOWN:
            self._hits += 1
            return bool(state)
        self._misses += 1
        result = (
            self._posterior.concentration_probability(m, n, self._delta)
            >= 1.0 - self._gamma
        )
        row[m] = _YES if result else _NO
        return result

    def is_concentrated_many(self, matches: np.ndarray, n: int) -> np.ndarray:
        """Vectorised :meth:`is_concentrated` for an array of match counts at one ``n``.

        Decisions come straight from the decision row; match counts not yet in
        the row are resolved with a single batched posterior call.  Counter
        semantics for batches: one miss per *fresh* ``(m, n)`` key, one hit
        per element already decided.
        """
        n = int(n)
        matches = np.asarray(matches, dtype=np.int64)
        if matches.size and (matches.min() < 0 or matches.max() > n):
            bad = int(matches.min()) if matches.min() < 0 else int(matches.max())
            self._posterior.concentration_probability(bad, n, self._delta)
        row = self._row(n)
        states = row[matches]
        unknown = np.unique(matches[states == _UNKNOWN])
        if len(unknown):
            probabilities = self._posterior.concentration_probability_many(
                unknown, n, self._delta
            )
            row[unknown] = np.where(probabilities >= 1.0 - self._gamma, _YES, _NO)
            self._misses += len(unknown)
            self._hits += int(np.count_nonzero(states != _UNKNOWN))
            states = row[matches]
        else:
            self._hits += matches.size
        return states == _YES
