"""Cache of concentration-test outcomes (Section 4.3).

Line 15 of Algorithm 1 stops comparing hashes for a pair once the similarity
estimate is sufficiently concentrated:
``Pr[|S - S_hat| < delta | M(m, n)] >= 1 - gamma``.  The outcome depends only
on the pair's match counts ``(m, n)``, never on the pair itself, so the result
of each inference is cached and shared across all pairs.  As the paper notes,
only ``m >= minMatches(n)`` can ever be queried (smaller ``m`` is pruned
first), which keeps the cache small.
"""

from __future__ import annotations

import numpy as np

from repro.core.posteriors import PosteriorModel

__all__ = ["ConcentrationCache"]


class ConcentrationCache:
    """Memoised "is the estimate concentrated enough?" test keyed by ``(m, n)``.

    Parameters
    ----------
    posterior:
        Posterior model providing :meth:`concentration_probability`.
    delta, gamma:
        Accuracy parameters: the test passes when the posterior places at
        least ``1 - gamma`` probability within ``delta`` of the MAP estimate.
    """

    def __init__(self, posterior: PosteriorModel, delta: float, gamma: float):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must lie in (0, 1), got {gamma}")
        self._posterior = posterior
        self._delta = float(delta)
        self._gamma = float(gamma)
        self._cache: dict[tuple[int, int], bool] = {}
        self._hits = 0
        self._misses = 0

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def hits(self) -> int:
        """Number of queries answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of queries that required fresh inference."""
        return self._misses

    def __len__(self) -> int:
        return len(self._cache)

    def is_concentrated(self, m: int, n: int) -> bool:
        """Whether the estimate after ``m`` of ``n`` matches meets the accuracy target."""
        key = (int(m), int(n))
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = (
            self._posterior.concentration_probability(key[0], key[1], self._delta)
            >= 1.0 - self._gamma
        )
        self._cache[key] = result
        return result

    def is_concentrated_many(self, matches: np.ndarray, n: int) -> np.ndarray:
        """Vectorised :meth:`is_concentrated` for an array of match counts at one ``n``."""
        return np.array(
            [self.is_concentrated(int(m), int(n)) for m in np.asarray(matches)], dtype=bool
        )
