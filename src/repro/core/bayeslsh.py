"""Algorithm 1: BayesLSH — candidate pruning and similarity estimation.

For every candidate pair the algorithm compares hashes in batches of ``k``.
After each batch it can take one of three actions:

* **prune** the pair because ``Pr[S >= t | M(m, n)] < epsilon``
  (implemented with the pre-computed :class:`~repro.core.min_matches.MinMatchesTable`);
* **emit** the pair because the similarity estimate is sufficiently
  concentrated, ``Pr[|S - S_hat| < delta] >= 1 - gamma``
  (implemented with the :class:`~repro.core.concentration_cache.ConcentrationCache`);
* continue with the next batch of hashes.

The implementation is round-synchronous rather than pair-at-a-time: all still
-active pairs advance one batch per round, which produces exactly the same
decisions as the paper's per-pair loop (every decision depends only on the
pair's own ``(m, n)``) while allowing the hash comparisons to be vectorised.
The per-round survivor counts recorded in :class:`VerificationOutput.trace`
are what Figure 4 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHParams
from repro.core.posteriors import PosteriorModel
from repro.hashing.base import HashFamily

__all__ = ["BayesLSH", "VerificationOutput"]


@dataclass
class VerificationOutput:
    """Result of verifying a batch of candidate pairs.

    Attributes
    ----------
    left, right:
        Row indices of the pairs that were *not* pruned, parallel arrays.
    estimates:
        Similarity estimate for each output pair (MAP estimates for BayesLSH,
        exact similarities for BayesLSH-Lite and the exact baselines).
    n_candidates:
        Number of candidate pairs that entered verification.
    n_pruned:
        Number of candidate pairs eliminated by the pruning test.
    trace:
        ``(n_hashes_examined, n_candidates_still_alive)`` checkpoints, where
        "alive" means not yet pruned; this is the data behind Figure 4.
    hash_comparisons:
        Total number of individual hash comparisons performed.
    exact_computations:
        Number of exact similarity computations performed (zero for plain
        BayesLSH, one per surviving pair for BayesLSH-Lite).
    """

    left: np.ndarray
    right: np.ndarray
    estimates: np.ndarray
    n_candidates: int
    n_pruned: int
    trace: list[tuple[int, int]] = field(default_factory=list)
    hash_comparisons: int = 0
    exact_computations: int = 0

    @property
    def n_output(self) -> int:
        return len(self.left)

    def pairs(self) -> list[tuple[int, int, float]]:
        """Output as a list of ``(i, j, estimate)`` tuples."""
        return [
            (int(i), int(j), float(s))
            for i, j, s in zip(self.left, self.right, self.estimates)
        ]


_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2


class BayesLSH:
    """The BayesLSH candidate verifier (Algorithm 1).

    Parameters
    ----------
    family:
        Hash family bound to the vector collection; signatures are requested
        lazily, ``k`` hashes at a time, so vectors are only hashed as many
        times as the algorithm actually needs.
    posterior:
        Posterior model matching the similarity measure (Beta posterior for
        Jaccard, truncated collision posterior for cosine).
    params:
        The ``threshold`` / ``epsilon`` / ``delta`` / ``gamma`` knobs.
    """

    def __init__(self, family: HashFamily, posterior: PosteriorModel, params: BayesLSHParams):
        self._family = family
        self._posterior = posterior
        self._params = params
        self._min_matches = MinMatchesTable(
            posterior,
            threshold=params.threshold,
            epsilon=params.epsilon,
            k=params.k,
            max_hashes=params.max_hashes,
        )
        self._concentration = ConcentrationCache(posterior, delta=params.delta, gamma=params.gamma)

    @property
    def params(self) -> BayesLSHParams:
        return self._params

    @property
    def posterior(self) -> PosteriorModel:
        return self._posterior

    @property
    def min_matches_table(self) -> MinMatchesTable:
        return self._min_matches

    @property
    def concentration_cache(self) -> ConcentrationCache:
        return self._concentration

    def verify(self, left, right) -> VerificationOutput:
        """Verify candidate pairs given as parallel index arrays.

        Returns every pair that was not pruned, together with its MAP
        similarity estimate.  Pairs that exhaust the hash budget without
        meeting the concentration requirement are emitted with their current
        estimate (and counted in the trace as alive throughout).
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have the same shape")
        n_pairs = len(left)
        params = self._params

        status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
        matches = np.zeros(n_pairs, dtype=np.int64)
        hashes_seen = np.zeros(n_pairs, dtype=np.int64)
        trace: list[tuple[int, int]] = []
        hash_comparisons = 0

        if n_pairs:
            for round_index in range(params.n_rounds):
                active = np.flatnonzero(status == _ACTIVE)
                if len(active) == 0:
                    break
                n_prev = round_index * params.k
                n_now = n_prev + params.k
                store = self._family.signatures(n_now)
                new_matches = store.count_matches_many(
                    left[active], right[active], n_prev, n_now
                )
                hash_comparisons += len(active) * params.k
                matches[active] += new_matches
                hashes_seen[active] = n_now

                # Pruning test (line 10): m < minMatches(n).
                keep_mask = self._min_matches.passes_many(matches[active], n_now)
                pruned_rows = active[~keep_mask]
                status[pruned_rows] = _PRUNED

                # Concentration test (line 15) for the pairs that survived pruning.
                survivors = active[keep_mask]
                if len(survivors):
                    concentrated = self._concentration.is_concentrated_many(
                        matches[survivors], n_now
                    )
                    status[survivors[concentrated]] = _EMITTED

                n_alive = int(np.sum(status != _PRUNED))
                trace.append((n_now, n_alive))

        output_mask = status != _PRUNED
        output_left = left[output_mask]
        output_right = right[output_mask]
        output_matches = matches[output_mask]
        output_hashes = hashes_seen[output_mask]
        if len(output_matches):
            # Batched MAP estimates (bit-identical to the scalar map_estimate
            # per pair); pairs that never saw a hash report estimate 0.
            estimates = np.where(
                output_hashes > 0,
                self._posterior.map_estimate_many(output_matches, output_hashes),
                0.0,
            ).astype(np.float64, copy=False)
        else:
            estimates = np.zeros(0, dtype=np.float64)
        return VerificationOutput(
            left=output_left,
            right=output_right,
            estimates=estimates,
            n_candidates=n_pairs,
            n_pruned=int(np.sum(status == _PRUNED)),
            trace=trace,
            hash_comparisons=hash_comparisons,
        )
