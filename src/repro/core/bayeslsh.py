"""Algorithm 1: BayesLSH — candidate pruning and similarity estimation.

For every candidate pair the algorithm compares hashes in batches of ``k``.
After each batch it can take one of three actions:

* **prune** the pair because ``Pr[S >= t | M(m, n)] < epsilon``
  (implemented with the pre-computed :class:`~repro.core.min_matches.MinMatchesTable`);
* **emit** the pair because the similarity estimate is sufficiently
  concentrated, ``Pr[|S - S_hat| < delta] >= 1 - gamma``
  (implemented with the :class:`~repro.core.concentration_cache.ConcentrationCache`);
* continue with the next batch of hashes.

The implementation is round-synchronous rather than pair-at-a-time: all still
-active pairs advance one batch per round, which produces exactly the same
decisions as the paper's per-pair loop (every decision depends only on the
pair's own ``(m, n)``) while allowing the hash comparisons to be vectorised.
The per-round survivor counts recorded in :class:`VerificationOutput.trace`
are what Figure 4 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHParams
from repro.core.posteriors import PosteriorModel
from repro.hashing.base import HashFamily

__all__ = ["BayesLSH", "VerificationOutput"]


@dataclass
class VerificationOutput:
    """Result of verifying a batch of candidate pairs.

    Attributes
    ----------
    left, right:
        Row indices of the pairs that were *not* pruned, parallel arrays.
    estimates:
        Similarity estimate for each output pair (MAP estimates for BayesLSH,
        exact similarities for BayesLSH-Lite and the exact baselines).
    n_candidates:
        Number of candidate pairs that entered verification.
    n_pruned:
        Number of candidate pairs eliminated by the pruning test.
    trace:
        ``(n_hashes_examined, n_candidates_still_alive)`` checkpoints, where
        "alive" means not yet pruned; this is the data behind Figure 4.
    hash_comparisons:
        Total number of individual hash comparisons performed.
    exact_computations:
        Number of exact similarity computations performed (zero for plain
        BayesLSH, one per surviving pair for BayesLSH-Lite).
    """

    left: np.ndarray
    right: np.ndarray
    estimates: np.ndarray
    n_candidates: int
    n_pruned: int
    trace: list[tuple[int, int]] = field(default_factory=list)
    hash_comparisons: int = 0
    exact_computations: int = 0

    @property
    def n_output(self) -> int:
        return len(self.left)

    def pairs(self) -> list[tuple[int, int, float]]:
        """Output as a list of ``(i, j, estimate)`` tuples."""
        return list(
            zip(self.left.tolist(), self.right.tolist(), self.estimates.tolist())
        )

    @classmethod
    def merge(cls, outputs: "list[VerificationOutput]") -> "VerificationOutput":
        """Combine the outputs of disjoint candidate blocks into one.

        Output pairs are concatenated in block order and counters are summed.
        Traces are merged round-by-round: a block whose pairs were all decided
        by round ``r`` contributes its final not-pruned count to every later
        round, which reconstructs exactly the trace a single monolithic
        round-synchronous run over the union of the blocks would record (every
        prune/emit decision depends only on the pair's own ``(m, n)``).
        """
        outputs = list(outputs)
        if not outputs:
            return cls(
                left=np.zeros(0, dtype=np.int64),
                right=np.zeros(0, dtype=np.int64),
                estimates=np.zeros(0, dtype=np.float64),
                n_candidates=0,
                n_pruned=0,
            )
        trace: list[tuple[int, int]] = []
        for r in range(max(len(o.trace) for o in outputs)):
            n_now = next(o.trace[r][0] for o in outputs if len(o.trace) > r)
            alive = 0
            for o in outputs:
                if len(o.trace) > r:
                    if o.trace[r][0] != n_now:
                        raise ValueError(
                            "cannot merge traces with mismatched round boundaries: "
                            f"{o.trace[r][0]} vs {n_now} at round {r}"
                        )
                    alive += o.trace[r][1]
                else:
                    alive += o.n_candidates - o.n_pruned
            trace.append((n_now, alive))
        return cls(
            left=np.concatenate([o.left for o in outputs]),
            right=np.concatenate([o.right for o in outputs]),
            estimates=np.concatenate([o.estimates for o in outputs]),
            n_candidates=sum(o.n_candidates for o in outputs),
            n_pruned=sum(o.n_pruned for o in outputs),
            trace=trace,
            hash_comparisons=sum(o.hash_comparisons for o in outputs),
            exact_computations=sum(o.exact_computations for o in outputs),
        )


_ACTIVE, _PRUNED, _EMITTED = 0, 1, 2

#: Round index from which verify() starts gathering multi-round super-blocks.
#: Rounds 0 and 1 prune the bulk of the candidates, so super-blocking them
#: gathers columns most pairs never look at — measured ~1.5x slower on the
#: 100k-pair hot-path workload.  From round 2 on the survivor set is stable
#: and the wide gather amortises.
_SUPERBLOCK_START = 2
#: maximum number of rounds gathered per super-block
_SUPERBLOCK_ROUNDS = 4
# NOTE: there is deliberately no active-count ceiling any more.  The former
# _SUPERBLOCK_MAX_ACTIVE = 600 cap existed because the wide gather's
# n_active x span scratch fell out of cache for large active sets; the store
# kernels now tile the pair axis to an L2-sized scratch
# (repro.hashing.signatures._TILE_BYTES), which makes the super-block no
# slower at small active counts (a single tile is exactly the former wide
# gather) and measurably faster at large ones (~2x kernel-level for integer
# signatures at 200k pairs; end-to-end verify measured in
# benchmarks/test_bench_hotpaths.py).


class BayesLSH:
    """The BayesLSH candidate verifier (Algorithm 1).

    Parameters
    ----------
    family:
        Hash family bound to the vector collection; signatures are requested
        lazily, ``k`` hashes at a time, so vectors are only hashed as many
        times as the algorithm actually needs.
    posterior:
        Posterior model matching the similarity measure (Beta posterior for
        Jaccard, truncated collision posterior for cosine).
    params:
        The ``threshold`` / ``epsilon`` / ``delta`` / ``gamma`` knobs.
    """

    def __init__(self, family: HashFamily, posterior: PosteriorModel, params: BayesLSHParams):
        self._family = family
        self._posterior = posterior
        self._params = params
        self._min_matches = MinMatchesTable(
            posterior,
            threshold=params.threshold,
            epsilon=params.epsilon,
            k=params.k,
            max_hashes=params.max_hashes,
        )
        self._concentration = ConcentrationCache(posterior, delta=params.delta, gamma=params.gamma)

    @property
    def params(self) -> BayesLSHParams:
        return self._params

    @property
    def posterior(self) -> PosteriorModel:
        return self._posterior

    @property
    def min_matches_table(self) -> MinMatchesTable:
        return self._min_matches

    @property
    def concentration_cache(self) -> ConcentrationCache:
        return self._concentration

    def verify(self, left, right) -> VerificationOutput:
        """Verify candidate pairs given as parallel index arrays.

        Returns every pair that was not pruned, together with its MAP
        similarity estimate.  Pairs that exhaust the hash budget without
        meeting the concentration requirement are emitted with their current
        estimate (and counted in the trace as alive throughout).
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have the same shape")
        n_pairs = len(left)
        params = self._params

        status = np.full(n_pairs, _ACTIVE, dtype=np.int8)
        matches = np.zeros(n_pairs, dtype=np.int64)
        hashes_seen = np.zeros(n_pairs, dtype=np.int64)
        trace: list[tuple[int, int]] = []
        hash_comparisons = 0

        if n_pairs:
            round_index = 0
            while round_index < params.n_rounds:
                active = np.flatnonzero(status == _ACTIVE)
                if len(active) == 0:
                    break
                n_prev = round_index * params.k

                # Survivor-side super-block: once the cheap early rounds have
                # pruned the bulk of the pairs, the remaining long-surviving
                # pairs gather several rounds' worth of signature columns in
                # one wide row gather instead of one narrow gather per round.
                # Only rounds whose hashes are already materialised are
                # super-blocked, so the family's lazy hash-generation pattern
                # (and hence its RNG stream consumption) is unchanged.
                n_rounds_block = 1
                if round_index >= _SUPERBLOCK_START:
                    materialised = (self._family.n_hashes - n_prev) // params.k
                    n_rounds_block = max(
                        1,
                        min(
                            _SUPERBLOCK_ROUNDS,
                            params.n_rounds - round_index,
                            materialised,
                        ),
                    )
                n_block_end = n_prev + n_rounds_block * params.k
                store = self._family.signatures(n_block_end)
                round_counts = store.count_matches_rounds(
                    left[active], right[active], n_prev, n_block_end, params.k
                )

                # Replay the rounds over the cached counts.  Decisions are
                # identical to the one-round-at-a-time loop: each pair's
                # (m, n) evolves exactly as before, and pairs decided inside
                # the super-block simply ignore their remaining cached
                # columns.  Counters track the live set, not the gathers.
                local_active = np.arange(len(active))
                for s in range(n_rounds_block):
                    n_now = n_prev + (s + 1) * params.k
                    rows = active[local_active]
                    matches[rows] += round_counts[local_active, s]
                    hashes_seen[rows] = n_now
                    hash_comparisons += len(rows) * params.k

                    # Pruning test (line 10): m < minMatches(n).
                    keep_mask = self._min_matches.passes_many(matches[rows], n_now)
                    status[rows[~keep_mask]] = _PRUNED

                    # Concentration test (line 15) for the pairs that
                    # survived pruning.
                    survivors = rows[keep_mask]
                    if len(survivors):
                        concentrated = self._concentration.is_concentrated_many(
                            matches[survivors], n_now
                        )
                        status[survivors[concentrated]] = _EMITTED
                        local_active = local_active[keep_mask][~concentrated]
                    else:
                        local_active = local_active[keep_mask]

                    n_alive = int(np.sum(status != _PRUNED))
                    trace.append((n_now, n_alive))
                    if len(local_active) == 0:
                        break
                round_index += s + 1

        output_mask = status != _PRUNED
        output_left = left[output_mask]
        output_right = right[output_mask]
        output_matches = matches[output_mask]
        output_hashes = hashes_seen[output_mask]
        if len(output_matches):
            # Batched MAP estimates (bit-identical to the scalar map_estimate
            # per pair); pairs that never saw a hash report estimate 0.
            estimates = np.where(
                output_hashes > 0,
                self._posterior.map_estimate_many(output_matches, output_hashes),
                0.0,
            ).astype(np.float64, copy=False)
        else:
            estimates = np.zeros(0, dtype=np.float64)
        return VerificationOutput(
            left=output_left,
            right=output_right,
            estimates=estimates,
            n_candidates=n_pairs,
            n_pruned=int(np.sum(status == _PRUNED)),
            trace=trace,
            hash_comparisons=hash_comparisons,
        )
