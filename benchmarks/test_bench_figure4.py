"""Benchmark for Figure 4: BayesLSH pruning of AllPairs- and LSH-generated candidates."""

import pytest

from repro.experiments.figure4 import prune_trace_for


@pytest.mark.parametrize("generator", ["allpairs", "lsh"])
def test_bench_figure4_pruning_trace(benchmark, wikiwords_dataset, generator):
    """Time candidate generation + BayesLSH pruning and check the Figure-4 shape."""
    trace_info = benchmark.pedantic(
        lambda: prune_trace_for(
            wikiwords_dataset, "cosine", 0.7, generator, seed=1, max_hashes=256
        ),
        rounds=2,
        iterations=1,
    )
    counts = [alive for _, alive in trace_info["trace"]]
    # the candidate count must shrink substantially within the hash budget
    assert counts[-1] < trace_info["n_candidates"]
    assert counts == sorted(counts, reverse=True)


def test_figure4_most_pruning_happens_early(wikiwords_dataset):
    """Shape check (not timed): a large share of pruned pairs go in the first rounds."""
    trace_info = prune_trace_for(wikiwords_dataset, "cosine", 0.7, "allpairs", max_hashes=256)
    trace = dict(trace_info["trace"])
    total_pruned = trace_info["n_candidates"] - trace[256]
    pruned_by_96 = trace_info["n_candidates"] - trace[96]
    assert total_pruned > 0
    assert pruned_by_96 / total_pruned > 0.5
