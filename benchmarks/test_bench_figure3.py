"""Benchmark for Figure 3: timing of every pipeline across datasets and thresholds.

Each benchmark case is one (dataset family, pipeline) combination at a
representative threshold; the full sweep (all thresholds, all datasets) is
produced by ``bayeslsh-experiments figure3``.
"""

import pytest

from repro.search.pipelines import make_pipeline

_COSINE_PIPELINES = [
    "allpairs",
    "ap_bayeslsh",
    "ap_bayeslsh_lite",
    "lsh",
    "lsh_approx",
    "lsh_bayeslsh",
    "lsh_bayeslsh_lite",
]
_BINARY_PIPELINES = ["lsh", "lsh_approx", "lsh_bayeslsh", "lsh_bayeslsh_lite", "ppjoin"]


@pytest.mark.parametrize("pipeline", _COSINE_PIPELINES)
def test_bench_figure3_text_cosine(benchmark, rcv1_dataset, pipeline):
    """Weighted-cosine panel on the RCV1 stand-in at t = 0.7."""
    def run():
        engine = make_pipeline(pipeline, rcv1_dataset, measure="cosine", threshold=0.7, seed=1)
        return engine.run(rcv1_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_candidates >= len(result)


@pytest.mark.parametrize("pipeline", _COSINE_PIPELINES)
def test_bench_figure3_graph_cosine(benchmark, wikilinks_dataset, pipeline):
    """Weighted-cosine panel on the WikiLinks stand-in at t = 0.7."""
    def run():
        engine = make_pipeline(
            pipeline, wikilinks_dataset, measure="cosine", threshold=0.7, seed=1
        )
        return engine.run(wikilinks_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_candidates >= len(result)


@pytest.mark.parametrize("pipeline", _BINARY_PIPELINES)
def test_bench_figure3_binary_jaccard(benchmark, binary_wikiwords_dataset, pipeline):
    """Binary-Jaccard panel on the WikiWords500K stand-in at t = 0.5."""
    def run():
        engine = make_pipeline(
            pipeline, binary_wikiwords_dataset, measure="jaccard", threshold=0.5, seed=1
        )
        return engine.run(binary_wikiwords_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_candidates >= len(result)


@pytest.mark.parametrize("pipeline", ["allpairs", "ap_bayeslsh_lite", "lsh_bayeslsh", "ppjoin"])
def test_bench_figure3_binary_cosine(benchmark, binary_wikiwords_dataset, pipeline):
    """Binary-cosine panel on the WikiWords500K stand-in at t = 0.7."""
    def run():
        engine = make_pipeline(
            pipeline, binary_wikiwords_dataset, measure="binary_cosine", threshold=0.7, seed=1
        )
        return engine.run(binary_wikiwords_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_candidates >= len(result)
