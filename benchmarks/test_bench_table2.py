"""Benchmark for Table 2: total-time aggregation and speedups over baselines."""

from repro.experiments import figure3, table2


def test_bench_table2_speedup_aggregation(benchmark, bench_scale):
    """Run a reduced sweep (2 datasets x 2 thresholds) and aggregate it into Table 2."""

    def run():
        sweep = figure3.run(
            scale=bench_scale,
            seed=7,
            repeats=1,
            timeout=None,
            groups=["weighted_cosine"],
            datasets=["rcv1", "wikilinks"],
            thresholds=[0.6, 0.8],
        )
        return table2.run(figure3_result=sweep)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result.tables["speedups"].rows
    assert len(rows) == 2
    for row in rows:
        assert row[2] in ("ap_bayeslsh", "ap_bayeslsh_lite", "lsh_bayeslsh", "lsh_bayeslsh_lite")
