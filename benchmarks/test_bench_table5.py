"""Benchmark for Table 5: output quality while varying gamma, delta, epsilon."""

from repro.experiments import table5


def test_bench_table5_quality_sweep(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: table5.run(scale=bench_scale, values=(0.01, 0.05, 0.09), seed=7),
        rounds=1,
        iterations=1,
    )
    rows = result.tables["quality"].rows
    by_value = {row[0]: row for row in rows}
    # mean error shrinks when delta shrinks (column 2 is the delta metric)
    assert by_value[0.01][2] <= by_value[0.09][2] + 1e-9
    # recall does not increase when epsilon grows (column 3 is the epsilon metric)
    assert by_value[0.01][3] >= by_value[0.09][3] - 1.0
