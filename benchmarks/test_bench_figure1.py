"""Benchmark for Figure 1: required-hash-count curve of the fixed-budget estimator."""

from repro.experiments import figure1


def test_bench_figure1_required_hashes(benchmark):
    """Time the exact binomial computation behind Figure 1 and check its shape."""
    result = benchmark.pedantic(
        lambda: figure1.run(similarities=[0.1, 0.3, 0.5, 0.7, 0.9], max_hashes=2000),
        rounds=3,
        iterations=1,
    )
    values = {row[0]: row[1] for row in result.tables["required_hashes"].rows}
    assert values[0.5] > values[0.9]
    assert values[0.5] > values[0.1]
