#!/usr/bin/env python
"""CI smoke for the resident serving daemon: coalesce, match, drain, no leaks.

The end-to-end acceptance run the ``daemon-smoke`` CI step executes:

1. build a :class:`~repro.search.query.QueryIndex`, record the serial
   in-process answers for a query batch;
2. start a :class:`~repro.serving.daemon.ServingDaemon` that owns a resident
   worker pool, and drive the batch through *concurrent* client threads;
3. assert every wire answer is bit-identical to the serial oracle and that
   the requests really coalesced (fewer batches than requests);
4. drain the daemon gracefully and assert the whole lifecycle left no
   ``/dev/shm/psm_*`` shared-memory segment behind (the same leak audit the
   test suite applies per-test, here applied across the daemon's lifetime
   including the resident pool it owned).

Exits non-zero on any divergence, failed coalescing, or leaked segment.

Usage::

    PYTHONPATH=src python benchmarks/daemon_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
from pathlib import Path

_SHM_DIR = Path("/dev/shm")


def _shm_segments() -> set:
    if not _SHM_DIR.is_dir():  # non-Linux: nothing to audit
        return set()
    return {entry.name for entry in _SHM_DIR.iterdir() if entry.name.startswith("psm_")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-documents", type=int, default=1500)
    parser.add_argument("--n-queries", type=int, default=64)
    parser.add_argument("--n-clients", type=int, default=8)
    parser.add_argument("--pool-workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.datasets.synthetic import synthetic_text_corpus
    from repro.search.query import QueryIndex
    from repro.serving import DaemonClient, ServingDaemon
    from repro.similarity.transforms import tfidf_weighting

    corpus = synthetic_text_corpus(
        n_documents=args.n_documents + args.n_queries,
        vocabulary_size=3000,
        average_length=40,
        duplicate_fraction=0.35,
        cluster_size=4,
        mutation_rate=0.08,
        seed=43,
    )
    collection = tfidf_weighting(corpus.collection)
    index = QueryIndex(
        collection.subset(range(args.n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=11,
    )
    queries = collection.matrix[args.n_documents :]
    index.query_many(queries[:2], threshold=0.7)  # warm the lazy hashing
    oracle = [
        [[int(pair.j), float(pair.similarity)] for pair in scored]
        for scored in index.query_many(queries, threshold=0.7)
    ]

    before = _shm_segments()
    n = queries.shape[0]
    answers: list = [None] * n
    errors: list = []

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(Path(tmp) / "daemon.sock")
        daemon = ServingDaemon(
            index,
            socket_path,
            batch_window_ms=15,
            max_batch=64,
            pool_workers=args.pool_workers,
        )
        with daemon:
            span = -(-n // args.n_clients)

            def drive(start: int) -> None:
                try:
                    with DaemonClient(socket_path) as client:
                        for i in range(start, min(start + span, n)):
                            answers[i] = client.query(queries[i], threshold=0.7)
                except Exception as exc:  # surfaced below, fails the run
                    errors.append(exc)

            threads = [
                threading.Thread(target=drive, args=(start,))
                for start in range(0, n, span)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            with DaemonClient(socket_path) as client:
                stats = client.stats()
                client.drain()
            daemon._stopped.wait(timeout=30)

    if errors:
        print(f"error: {len(errors)} client(s) failed: {errors[0]}", file=sys.stderr)
        return 1
    mismatched = [i for i in range(n) if answers[i] != oracle[i]]
    if mismatched:
        print(
            f"error: {len(mismatched)} answer(s) diverged from the serial oracle "
            f"(first: query {mismatched[0]})",
            file=sys.stderr,
        )
        return 1
    print(
        f"daemon-smoke: {stats['requests']} requests over {args.n_clients} clients "
        f"coalesced into {stats['batches']} batches "
        f"(max batch {stats['max_batch_observed']}), all bit-identical to serial"
    )
    if stats["batches"] >= stats["requests"]:
        print("error: requests did not coalesce (batches >= requests)", file=sys.stderr)
        return 1
    if index.pool_stats() is not None:
        print("error: daemon left its resident pool attached", file=sys.stderr)
        return 1

    leaked = sorted(_shm_segments() - before)
    if leaked:
        print(f"error: leaked shared-memory segments: {leaked}", file=sys.stderr)
        return 1
    print("daemon-smoke: graceful drain, no /dev/shm segments leaked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
