"""Shared fixtures for the benchmark harness.

Benchmarks regenerate each table/figure of the paper at a reduced scale (the
``--benchmark-only`` run must finish in minutes, not the paper's 50-hour
cluster budget).  The scale can be raised through the ``BAYESLSH_BENCH_SCALE``
environment variable to push the measurements closer to the paper's regime.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import load_experiment_dataset

#: dataset scale used by the benchmark harness (override via environment)
BENCH_SCALE = float(os.environ.get("BAYESLSH_BENCH_SCALE", "0.25"))
BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def wikiwords_dataset():
    return load_experiment_dataset("wikiwords100k", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def rcv1_dataset():
    return load_experiment_dataset("rcv1", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def wikilinks_dataset():
    return load_experiment_dataset("wikilinks", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def binary_wikiwords_dataset():
    return load_experiment_dataset(
        "wikiwords500k", scale=BENCH_SCALE, seed=BENCH_SEED, binary=True
    )
