"""Hot-path micro-benchmarks: signature generation, verification, candidates.

Unlike the figure/table benchmarks (which time whole experiments at reduced
scale), this module times the three inner loops that dominate every
experiment, so regressions in any one of them are visible in isolation:

* **signature generation** — hashing every vector of a corpus with the
  minwise and signed-random-projection families;
* **candidate verification** — ``BayesLSH.verify`` on 100k candidate pairs,
  a workload dominated by prefix match counting, the pruning/concentration
  table lookups and the batched MAP estimates;
* **candidate generation** — the LSH banding index, AllPairs and PPJoin on
  the synthetic corpus.

The verification workload deliberately mixes same-cluster (high-similarity)
pairs with random pairs: random pairs are pruned in the first round, so a
purely random candidate set would only measure match counting, while the
same-cluster pairs survive many rounds and exercise the concentration test
and estimation paths the way real LSH candidates do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.lsh_index import LSHGenerator
from repro.candidates.ppjoin import PPJoinGenerator
from repro.core.bayeslsh import BayesLSH
from repro.core.params import BayesLSHParams
from repro.core.posteriors import BetaPosterior, TruncatedCollisionPosterior
from repro.datasets.synthetic import synthetic_text_corpus
from repro.hashing.minhash import MinHashFamily
from repro.hashing.simhash import SimHashFamily
from repro.similarity.transforms import tfidf_weighting

#: corpus scale for the hot-path workloads
_N_DOCUMENTS = 2000
_CLUSTER_SIZE = 4
_N_PAIRS = 100_000
#: hash budget for the verification benchmarks (kept below the paper's 2048
#: so the one-off signature pre-computation stays cheap)
_MAX_HASHES = 512


@pytest.fixture(scope="module")
def hotpath_corpus():
    """A corpus with a large planted-duplicate portion (many verifiable pairs)."""
    return synthetic_text_corpus(
        n_documents=_N_DOCUMENTS,
        vocabulary_size=4000,
        average_length=40,
        duplicate_fraction=0.6,
        cluster_size=_CLUSTER_SIZE,
        mutation_rate=0.1,
        seed=97,
    )


@pytest.fixture(scope="module")
def binary_collection(hotpath_corpus):
    return hotpath_corpus.collection.binarized()


@pytest.fixture(scope="module")
def tfidf_collection(hotpath_corpus):
    return tfidf_weighting(hotpath_corpus.collection)


@pytest.fixture(scope="module")
def candidate_pairs(binary_collection):
    """100k candidate pairs: 60% drawn within duplicate clusters, 40% random.

    Cluster members occupy the leading rows of the synthetic corpus in runs
    of ``_CLUSTER_SIZE``, which is how the same-cluster pairs are drawn.
    """
    rng = np.random.default_rng(5)
    n = binary_collection.n_vectors
    n_cluster_pairs = int(0.6 * _N_PAIRS)
    n_clustered_docs = (n // 2) // _CLUSTER_SIZE * _CLUSTER_SIZE
    base = rng.integers(0, n_clustered_docs, size=n_cluster_pairs)
    offset = rng.integers(1, _CLUSTER_SIZE, size=n_cluster_pairs)
    left_c = base
    right_c = (base // _CLUSTER_SIZE) * _CLUSTER_SIZE + (
        (base % _CLUSTER_SIZE + offset) % _CLUSTER_SIZE
    )
    n_random = _N_PAIRS - n_cluster_pairs
    left_r = rng.integers(0, n, size=n_random)
    right_r = rng.integers(0, n, size=n_random)
    left = np.concatenate([left_c, left_r])
    right = np.concatenate([right_c, right_r])
    keep = left != right
    return left[keep], right[keep]


def test_bench_minhash_signature_generation(benchmark, binary_collection):
    """Incrementally hash the corpus up to 512 minwise hashes.

    Signatures are grown lazily in batches, exactly the way the BayesLSH
    verifier consumes them ("each point is hashed only as many times as
    necessary") — the pattern every figure benchmark exercises.
    """

    def run():
        family = MinHashFamily(binary_collection, seed=3)
        for n_hashes in range(64, _MAX_HASHES + 1, 64):
            store = family.signatures(n_hashes)
        return store

    store = benchmark.pedantic(run, rounds=3, iterations=1)
    assert store.n_hashes >= _MAX_HASHES
    assert store.n_vectors == binary_collection.n_vectors


def test_bench_simhash_signature_generation(benchmark, tfidf_collection):
    """Hash the whole corpus with 2048 projection bits (the paper's cosine budget)."""

    def run():
        return SimHashFamily(tfidf_collection, seed=3).signatures(2048)

    store = benchmark.pedantic(run, rounds=3, iterations=1)
    assert store.n_hashes >= 2048


def test_bench_bayeslsh_verify_jaccard(benchmark, binary_collection, candidate_pairs):
    """BayesLSH.verify on ~100k mixed candidate pairs (Jaccard / minhash)."""
    left, right = candidate_pairs
    family = MinHashFamily(binary_collection, seed=11)
    family.signatures(_MAX_HASHES)  # pre-hash so only verification is timed
    params = BayesLSHParams(
        threshold=0.3, epsilon=0.03, delta=0.05, gamma=0.03, k=32, max_hashes=_MAX_HASHES
    )

    def run():
        return BayesLSH(family, BetaPosterior(), params).verify(left, right)

    output = benchmark.pedantic(run, rounds=3, iterations=1)
    assert output.n_candidates == len(left)
    assert 0 < output.n_output < len(left)


def test_bench_bayeslsh_verify_cosine(benchmark, tfidf_collection, candidate_pairs):
    """BayesLSH.verify on ~100k mixed candidate pairs (cosine / simhash)."""
    left, right = candidate_pairs
    family = SimHashFamily(tfidf_collection, seed=11)
    family.signatures(_MAX_HASHES)
    params = BayesLSHParams(
        threshold=0.5, epsilon=0.03, delta=0.05, gamma=0.03, k=32, max_hashes=_MAX_HASHES
    )

    def run():
        return BayesLSH(family, TruncatedCollisionPosterior(), params).verify(left, right)

    output = benchmark.pedantic(run, rounds=3, iterations=1)
    assert output.n_candidates == len(left)
    assert 0 < output.n_output < len(left)


@pytest.fixture(scope="module")
def minhash_store(binary_collection):
    """A 512-hash integer signature store over the corpus (for kernel benches)."""
    family = MinHashFamily(binary_collection, seed=19)
    return family.signatures(_MAX_HASHES)


def _kernel_pairs(n_vectors: int, n_pairs: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(23)
    return (
        rng.integers(0, n_vectors, size=n_pairs),
        rng.integers(0, n_vectors, size=n_pairs),
    )


def test_bench_superblock_rounds_small(benchmark, minhash_store):
    """Tiled super-block gather, small active set (one tile == former wide path).

    Guards the 'no slower at small active sets' half of the tiling
    crossover: 500 pairs x 4 rounds of 32 integer hashes.
    """
    left, right = _kernel_pairs(minhash_store.n_vectors, 500)
    counts = benchmark(minhash_store.count_matches_rounds, left, right, 64, 192, 32)
    assert counts.shape == (500, 4)


def test_bench_superblock_rounds_large(benchmark, minhash_store):
    """Tiled super-block gather, large active set (200k pairs x 4 rounds).

    The regime the former wide gather lost (scratch fell out of cache —
    ROADMAP); the L2-sized pair tiles are what make super-blocking win here.
    """
    left, right = _kernel_pairs(minhash_store.n_vectors, 200_000)
    counts = benchmark(minhash_store.count_matches_rounds, left, right, 64, 192, 32)
    assert counts.shape == (200_000, 4)


def test_bench_cross_count_large(benchmark, minhash_store):
    """Tiled cross-store agreement counts at a large active set.

    The serving layer's per-round verification kernel
    (``count_matches_cross``) on 200k (query row, collection row) pairs over
    one 32-hash round — the large-active-set serving regime.
    """
    left, right = _kernel_pairs(minhash_store.n_vectors, 200_000)
    counts = benchmark(
        minhash_store.count_matches_cross, left, minhash_store, right, 64, 192
    )
    assert counts.shape == (200_000,)


def test_bench_lsh_candidate_generation(benchmark, binary_collection):
    """LSH banding index over the corpus (Jaccard, threshold 0.5)."""

    def run():
        return LSHGenerator("jaccard", threshold=0.5, seed=3).generate(binary_collection)

    candidates = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(candidates) > 0


def test_bench_allpairs_candidate_generation(benchmark, tfidf_collection):
    """AllPairs inverted-index candidate generation (cosine, threshold 0.7)."""

    def run():
        return AllPairsGenerator("cosine", threshold=0.7).generate(tfidf_collection)

    candidates = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(candidates) > 0


def test_bench_ppjoin_candidate_generation(benchmark, binary_collection):
    """PPJoin prefix-filter candidate generation (Jaccard, threshold 0.6)."""

    def run():
        return PPJoinGenerator("jaccard", threshold=0.6).generate(binary_collection)

    candidates = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(candidates) > 0


def test_bench_streamed_end_to_end(benchmark, binary_collection):
    """Full streamed pipeline (lsh_bayeslsh, Jaccard) on one in-process worker.

    Tracks the overhead of block streaming + incremental deduplication over
    the monolithic path; the outputs are bit-identical, so any large gap here
    is pure executor overhead.
    """
    from repro.search.engine import all_pairs_similarity

    def run():
        return all_pairs_similarity(
            binary_collection, threshold=0.5, measure="jaccard", seed=3, block_size=65536
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_candidates > 0
