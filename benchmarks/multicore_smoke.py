#!/usr/bin/env python
"""Wall-clock validation of the multicore execution and serving pools.

The ``n_workers > 1`` paths — :class:`repro.search.executor.StreamExecutor`
for the offline all-pairs engine and the serving pool behind
``QueryIndex.query_many``/``top_k_many`` — are bit-identity tested on every
run (``tests/property/test_execution_invariance`` and
``tests/property/test_query_serving``), but bit-identity says nothing about
whether the round-synchronous pools actually *speed things up* on real
hardware.  This script measures both: each workload runs serially and with a
worker pool, the outputs are checked identical, the wall-clock ratios are
printed and the raw timings are written as JSON (uploaded as the
``multicore-timing`` CI artifact).

The speedups are *reported, not asserted*: shared CI runners are noisy, so
the job fails only if a parallel path disagrees with its serial twin or the
machine cannot fork workers at all.

Usage::

    PYTHONPATH=src python benchmarks/multicore_smoke.py --output timing.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.datasets.synthetic import synthetic_text_corpus
from repro.search.engine import all_pairs_similarity
from repro.similarity.transforms import tfidf_weighting


def build_workload(n_documents: int, seed: int):
    corpus = synthetic_text_corpus(
        n_documents=n_documents,
        vocabulary_size=4000,
        average_length=40,
        duplicate_fraction=0.35,
        cluster_size=4,
        mutation_rate=0.08,
        seed=seed,
    )
    return tfidf_weighting(corpus.collection)


def timed_best(fn, repeats: int):
    """Minimum wall clock over ``repeats`` calls (noise-robust on shared runners).

    Returns ``(result_of_fastest_call, wall_seconds)``; the single timing
    helper shared by the all-pairs and serving smoke sections so both
    measure with the same methodology.
    """
    best_result, best_wall = None, float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_result, best_wall = result, wall
    return best_result, best_wall


def best_of(collection, threshold, method, n_workers, repeats):
    """Best-of-N wrapper around :func:`run_once` for the all-pairs workload."""
    return timed_best(
        lambda: all_pairs_similarity(
            collection,
            threshold=threshold,
            measure="cosine",
            method=method,
            seed=0,
            n_workers=n_workers,
        ),
        repeats,
    )


def serving_smoke(n_documents: int, n_queries: int, n_workers: int, repeats: int) -> dict:
    """Serial vs pooled batched serving (``top_k_many`` / ``query_many``).

    Builds a cosine ``QueryIndex`` once, then times the same query batch
    through the serial path and through the per-call serving pool; results
    must be bit-identical (the forked pool shards probing, verification and
    ranking, merging in serial order).
    """
    from repro.search.query import QueryIndex

    collection = build_workload(n_documents + n_queries, seed=23)
    index = QueryIndex(
        collection.subset(range(n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=3,
    )
    queries = collection.matrix[n_documents:]
    # Warm the lazy hash materialisation so both paths measure serving.
    index.top_k_many(queries[:2], k=10)

    report = {"n_documents": n_documents, "n_queries": n_queries, "n_workers": n_workers}
    identical = True
    for label, fn_serial, fn_pool in (
        (
            "top_k_many",
            lambda: index.top_k_many(queries, k=10),
            lambda: index.top_k_many(queries, k=10, n_workers=n_workers),
        ),
        (
            "query_many",
            lambda: index.query_many(queries, threshold=0.7),
            lambda: index.query_many(queries, threshold=0.7, n_workers=n_workers),
        ),
    ):
        serial_result, serial_wall = timed_best(fn_serial, repeats)
        pooled_result, pooled_wall = timed_best(fn_pool, repeats)
        same = serial_result == pooled_result
        identical = identical and same
        speedup = serial_wall / pooled_wall if pooled_wall > 0 else float("nan")
        print(
            f"serving {label}: serial {serial_wall * 1000:7.1f}ms, "
            f"n_workers={n_workers} {pooled_wall * 1000:7.1f}ms, "
            f"speedup x{speedup:.2f}, identical: {same}"
        )
        report[label] = {
            "serial_s": serial_wall,
            "parallel_s": pooled_wall,
            "speedup": speedup,
            "identical_results": same,
        }
    report["identical_results"] = identical
    return report


def recovery_smoke(n_documents: int, n_queries: int, n_workers: int, repeats: int) -> dict:
    """Pool-recovery timing: a pooled batch with one worker SIGKILLed mid-round.

    Measures the same batched ``query_many`` call three ways — serial, pooled
    happy path, and pooled with worker 0 killed at verification round 0 (via
    the fault-injection harness) — and reports the recovery overhead.  The
    faulted call must still match the serial answers bit for bit; wall-clock
    numbers are reported, not asserted.
    """
    from repro.search.query import QueryIndex
    from repro.testing import faults

    collection = build_workload(n_documents + n_queries, seed=29)
    index = QueryIndex(
        collection.subset(range(n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=5,
    )
    queries = collection.matrix[n_documents:]
    index.query_many(queries[:2], threshold=0.7)  # warm the lazy hashing

    serial_result, serial_wall = timed_best(
        lambda: index.query_many(queries, threshold=0.7), repeats
    )
    pooled_result, pooled_wall = timed_best(
        lambda: index.query_many(queries, threshold=0.7, n_workers=n_workers), repeats
    )

    def faulted():
        with faults.inject() as plan:
            plan.kill_worker(0, event="serving_round", round_index=0)
            return index.query_many(queries, threshold=0.7, n_workers=n_workers)

    faulted_result, faulted_wall = timed_best(faulted, repeats)
    identical = serial_result == pooled_result == faulted_result
    overhead = faulted_wall / pooled_wall if pooled_wall > 0 else float("nan")
    print(
        f"recovery query_many: serial {serial_wall * 1000:7.1f}ms, "
        f"pooled {pooled_wall * 1000:7.1f}ms, "
        f"worker-killed {faulted_wall * 1000:7.1f}ms "
        f"(x{overhead:.2f} vs happy path), identical: {identical}"
    )
    return {
        "n_documents": n_documents,
        "n_queries": n_queries,
        "n_workers": n_workers,
        "serial_s": serial_wall,
        "pooled_s": pooled_wall,
        "worker_killed_s": faulted_wall,
        "recovery_overhead": overhead,
        "identical_results": identical,
    }


def resident_pool_smoke(
    n_documents: int, n_queries: int, n_workers: int, repeats: int
) -> dict:
    """Per-call fork vs resident pool: the per-batch overhead reduction.

    The same stream of small query batches runs twice — once through the
    per-call pool (``n_workers=k`` forks and tears down a pool every call)
    and once through a resident pool (``start_pool(k)`` forks once; each
    batch ships only its query-state delta) — with bit-identical results
    required and the per-batch wall-clock delta reported.  Small batches
    are deliberate: that is the daemon's coalescing regime, where the
    per-call fork + shared-memory export overhead dominates.
    """
    from repro.search.query import QueryIndex

    collection = build_workload(n_documents + n_queries, seed=31)
    index = QueryIndex(
        collection.subset(range(n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=7,
    )
    queries = collection.matrix[n_documents:]
    n_batches = 8
    step = max(1, queries.shape[0] // n_batches)
    batches = [queries[i : i + step] for i in range(0, queries.shape[0], step)]
    index.query_many(batches[0][:2], threshold=0.7)  # warm the lazy hashing

    def per_call():
        return [
            index.query_many(batch, threshold=0.7, n_workers=n_workers)
            for batch in batches
        ]

    def resident():
        index.start_pool(n_workers)
        try:
            return [index.query_many(batch, threshold=0.7) for batch in batches]
        finally:
            index.close()

    serial_result = [index.query_many(batch, threshold=0.7) for batch in batches]
    per_call_result, per_call_wall = timed_best(per_call, repeats)
    resident_result, resident_wall = timed_best(resident, repeats)
    identical = serial_result == per_call_result == resident_result
    per_batch_saving = (per_call_wall - resident_wall) / len(batches)
    reduction = 1.0 - resident_wall / per_call_wall if per_call_wall > 0 else float("nan")
    print(
        f"resident pool: {len(batches)} batches of {step}, "
        f"per-call fork {per_call_wall * 1000:7.1f}ms, "
        f"resident {resident_wall * 1000:7.1f}ms "
        f"({per_batch_saving * 1000:+.1f}ms/batch, {reduction:+.1%} overall), "
        f"identical: {identical}"
    )
    return {
        "n_documents": n_documents,
        "n_batches": len(batches),
        "batch_size": step,
        "n_workers": n_workers,
        "per_call_s": per_call_wall,
        "resident_s": resident_wall,
        "per_batch_saving_s": per_batch_saving,
        "overhead_reduction": reduction,
        "identical_results": identical,
    }


def cold_start_smoke(n_documents: int, n_queries: int, repeats: int) -> dict:
    """Cold-start latency: ``.npz`` deserialise vs flat-layout mmap load.

    The same index is saved in both layouts; loading the ``.npz`` archive
    decompresses and copies every array (O(corpus)), while the flat layout's
    ``storage="mmap"`` backend reads only the manifest and maps the member
    files read-only, deferring array pages, postings and decision tables to
    first use.  Both loads must answer the probe batch bit-identically to
    the index that saved them; the wall-clock ratio is the measured value
    of the out-of-core backend (reported, not asserted).
    """
    import tempfile
    from pathlib import Path

    from repro.search.query import QueryIndex

    collection = build_workload(n_documents + n_queries, seed=41)
    index = QueryIndex(
        collection.subset(range(n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=11,
    )
    queries = collection.matrix[n_documents:]
    index.query_many(queries[:2], threshold=0.7)  # warm the lazy hashing

    with tempfile.TemporaryDirectory() as tmp:
        npz_path = index.save(Path(tmp) / "cold.npz")
        flat_path = index.save(Path(tmp) / "cold.flat")
        oracle = index.query_many(queries, threshold=0.7)

        load_repeats = max(repeats, 3)
        _, npz_wall = timed_best(lambda: QueryIndex.load(npz_path), load_repeats)
        _, mmap_wall = timed_best(
            lambda: QueryIndex.load(flat_path, storage="mmap"), load_repeats
        )
        # First queries pay the deferred work; answers must still be
        # bit-identical to the instance that saved the snapshots.
        identical = (
            QueryIndex.load(npz_path).query_many(queries, threshold=0.7) == oracle
            and QueryIndex.load(flat_path, storage="mmap").query_many(
                queries, threshold=0.7
            )
            == oracle
        )
        npz_bytes = npz_path.stat().st_size
    speedup = npz_wall / mmap_wall if mmap_wall > 0 else float("nan")
    print(
        f"cold start: {n_documents} documents ({npz_bytes / 1e6:.1f}MB npz), "
        f"npz load {npz_wall * 1000:7.1f}ms, "
        f"flat mmap load {mmap_wall * 1000:7.1f}ms, "
        f"speedup x{speedup:.1f}, identical: {identical}"
    )
    return {
        "n_documents": n_documents,
        "npz_bytes": npz_bytes,
        "npz_load_s": npz_wall,
        "mmap_load_s": mmap_wall,
        "speedup": speedup,
        "identical_results": identical,
    }


def daemon_smoke(n_documents: int, n_queries: int, repeats: int) -> dict:
    """Daemon throughput: looped single client vs coalesced concurrency.

    The same queries go through the resident daemon twice — one client
    looping serially (every request its own batch) and many concurrent
    clients whose requests coalesce under the batch window — and both must
    return the serial in-process answers bit-identically over the wire.
    The throughput ratio is the measured value of coalescing; like every
    number in this artifact it is reported, not asserted.
    """
    import tempfile
    import threading
    from pathlib import Path

    from repro.search.query import QueryIndex
    from repro.serving import DaemonClient, ServingDaemon

    collection = build_workload(n_documents + n_queries, seed=37)
    index = QueryIndex(
        collection.subset(range(n_documents)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=9,
    )
    queries = collection.matrix[n_documents:]
    index.query_many(queries[:2], threshold=0.7)  # warm the lazy hashing
    oracle = [
        [[int(pair.j), float(pair.similarity)] for pair in scored]
        for scored in index.query_many(queries, threshold=0.7)
    ]
    n = queries.shape[0]
    n_clients = 8

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(Path(tmp) / "daemon.sock")
        with ServingDaemon(index, socket_path, batch_window_ms=10, max_batch=64):

            def looped():
                with DaemonClient(socket_path) as client:
                    return [client.query(queries[i], threshold=0.7) for i in range(n)]

            def coalesced():
                answers = [None] * n
                span = -(-n // n_clients)

                def drive(start: int) -> None:
                    with DaemonClient(socket_path) as client:
                        for i in range(start, min(start + span, n)):
                            answers[i] = client.query(queries[i], threshold=0.7)

                threads = [
                    threading.Thread(target=drive, args=(start,))
                    for start in range(0, n, span)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                return answers

            looped_result, looped_wall = timed_best(looped, repeats)
            coalesced_result, coalesced_wall = timed_best(coalesced, repeats)
            with DaemonClient(socket_path) as client:
                stats = client.stats()

    identical = looped_result == oracle and coalesced_result == oracle
    speedup = looped_wall / coalesced_wall if coalesced_wall > 0 else float("nan")
    print(
        f"daemon: {n} queries, looped {looped_wall * 1000:7.1f}ms "
        f"({n / looped_wall:6.0f} q/s), "
        f"coalesced x{n_clients} clients {coalesced_wall * 1000:7.1f}ms "
        f"({n / coalesced_wall:6.0f} q/s), speedup x{speedup:.2f}, "
        f"batches {stats['batches']} for {stats['requests']} requests, "
        f"identical: {identical}"
    )
    return {
        "n_documents": n_documents,
        "n_queries": n,
        "n_clients": n_clients,
        "looped_s": looped_wall,
        "coalesced_s": coalesced_wall,
        "looped_qps": n / looped_wall,
        "coalesced_qps": n / coalesced_wall,
        "speedup": speedup,
        "batches": stats["batches"],
        "requests": stats["requests"],
        "identical_results": identical,
    }


def wal_recovery_smoke(n_documents: int, n_queries: int, repeats: int) -> dict:
    """Durable-ingest overhead and crash-recovery replay wall-clock.

    The same insert stream runs three times — no WAL, ``fsync="batch"``
    and ``fsync="always"`` — to measure what each durability policy costs
    per acknowledged batch (the fsync matrix tabulated in
    ``docs/serving.md``).  The ``always`` run's log is then replayed on top
    of its pre-ingest snapshot and timed; the recovered index must answer
    a probe batch bit-identically to the index that did the live ingest.
    Wall-clock numbers are reported, not asserted.
    """
    import tempfile
    from pathlib import Path

    from repro.search.query import QueryIndex
    from repro.serving.wal import WriteAheadLog

    collection = build_workload(n_documents + n_queries, seed=43)
    base = collection.subset(range(n_documents))
    stream = collection.matrix[n_documents:]
    n_batches = 16
    step = max(1, stream.shape[0] // n_batches)
    batches = [stream[i : i + step] for i in range(0, stream.shape[0], step)]
    probes = collection.matrix[: min(32, n_documents)]

    def build() -> QueryIndex:
        return QueryIndex(
            base, measure="cosine", threshold=0.7, verification="bayes", seed=13
        )

    report: dict = {
        "n_documents": n_documents,
        "n_batches": len(batches),
        "batch_size": step,
    }
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        walls: dict = {}
        reference = None
        for label, policy in (("no_wal", None), ("batch", "batch"), ("always", "always")):
            best_wall = float("inf")
            for attempt in range(max(repeats, 1)):
                index = build()
                wal_dir = tmp / f"wal-{label}-{attempt}"
                if policy is not None:
                    index.attach_wal(WriteAheadLog(wal_dir, fsync=policy))
                    snapshot = index.save(tmp / f"pre-{label}-{attempt}.npz")
                start = time.perf_counter()
                for batch in batches:
                    index.insert(batch)
                best_wall = min(best_wall, time.perf_counter() - start)
                if policy is not None:
                    index.wal.close()
                if label == "always":
                    reference = index.query_many(probes, threshold=0.7)
                    replay_snapshot, replay_dir = snapshot, wal_dir
            walls[label] = best_wall

        start = time.perf_counter()
        recovered = QueryIndex.load(replay_snapshot, wal=WriteAheadLog(replay_dir))
        replay_wall = time.perf_counter() - start
        replayed = recovered.replay_stats()["replayed_records"]
        identical = recovered.query_many(probes, threshold=0.7) == reference
        recovered.wal.close()

    per_batch = lambda wall: wall / len(batches)  # noqa: E731
    overhead = {
        policy: walls[policy] / walls["no_wal"] if walls["no_wal"] > 0 else float("nan")
        for policy in ("batch", "always")
    }
    print(
        f"wal ingest: {len(batches)} batches of {step}, "
        f"no-wal {walls['no_wal'] * 1000:7.1f}ms, "
        f"fsync=batch {walls['batch'] * 1000:7.1f}ms (x{overhead['batch']:.2f}), "
        f"fsync=always {walls['always'] * 1000:7.1f}ms (x{overhead['always']:.2f}); "
        f"replay {replayed} records {replay_wall * 1000:7.1f}ms, "
        f"identical: {identical}"
    )
    report.update(
        {
            "no_wal_s": walls["no_wal"],
            "fsync_batch_s": walls["batch"],
            "fsync_always_s": walls["always"],
            "fsync_batch_overhead": overhead["batch"],
            "fsync_always_overhead": overhead["always"],
            "per_batch_no_wal_s": per_batch(walls["no_wal"]),
            "per_batch_always_s": per_batch(walls["always"]),
            "replayed_records": replayed,
            "replay_s": replay_wall,
            "identical_results": identical,
        }
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="multicore_timing.json", help="timing JSON path")
    parser.add_argument("--n-documents", type=int, default=3000)
    parser.add_argument("--n-workers", type=int, default=2)
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--method", default="lsh_bayeslsh")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--serving-documents",
        type=int,
        default=12_000,
        help="corpus size for the batched-serving smoke",
    )
    parser.add_argument(
        "--serving-queries",
        type=int,
        default=512,
        help="query batch size for the batched-serving smoke",
    )
    args = parser.parse_args(argv)

    collection = build_workload(args.n_documents, seed=17)
    print(
        f"workload: {collection.n_vectors} vectors, {collection.n_features} features, "
        f"method={args.method}, threshold={args.threshold}, "
        f"cpu_count={os.cpu_count()}"
    )

    serial_result, serial_wall = best_of(
        collection, args.threshold, args.method, None, args.repeats
    )
    parallel_result, parallel_wall = best_of(
        collection, args.threshold, args.method, args.n_workers, args.repeats
    )

    identical = (
        serial_result.pairs() == parallel_result.pairs()
        and serial_result.n_candidates == parallel_result.n_candidates
        and serial_result.n_pruned == parallel_result.n_pruned
    )
    speedup_total = serial_wall / parallel_wall if parallel_wall > 0 else float("nan")
    serial_verify = serial_result.timings["verification"]
    parallel_verify = parallel_result.timings["verification"]
    speedup_verify = (
        serial_verify / parallel_verify if parallel_verify > 0 else float("nan")
    )

    print(f"serial:   total {serial_wall:.3f}s (verification {serial_verify:.3f}s)")
    print(
        f"parallel: total {parallel_wall:.3f}s (verification {parallel_verify:.3f}s) "
        f"with n_workers={args.n_workers}"
    )
    print(
        f"speedup:  x{speedup_total:.2f} total, x{speedup_verify:.2f} verification, "
        f"results identical: {identical}"
    )

    serving_report = serving_smoke(
        args.serving_documents, args.serving_queries, args.n_workers, args.repeats
    )
    recovery_report = recovery_smoke(
        args.serving_documents // 4, args.serving_queries // 2, args.n_workers, args.repeats
    )
    resident_report = resident_pool_smoke(
        args.serving_documents // 4, args.serving_queries // 2, args.n_workers, args.repeats
    )
    daemon_report = daemon_smoke(
        args.serving_documents // 6, args.serving_queries // 4, args.repeats
    )
    cold_start_report = cold_start_smoke(
        args.serving_documents, args.serving_queries // 8, args.repeats
    )
    wal_report = wal_recovery_smoke(
        args.serving_documents // 6, args.serving_queries // 2, args.repeats
    )

    report = {
        "workload": {
            "n_documents": args.n_documents,
            "n_features": collection.n_features,
            "method": args.method,
            "threshold": args.threshold,
            "repeats": args.repeats,
        },
        "cpu_count": os.cpu_count(),
        "n_workers": args.n_workers,
        "n_output_pairs": len(serial_result),
        "serial": {"total_s": serial_wall, "timings": serial_result.timings},
        "parallel": {"total_s": parallel_wall, "timings": parallel_result.timings},
        "speedup_total": speedup_total,
        "speedup_verification": speedup_verify,
        "identical_results": identical,
        "serving": serving_report,
        "recovery": recovery_report,
        "resident_pool": resident_report,
        "daemon": daemon_report,
        "cold_start": cold_start_report,
        "wal_recovery": wal_report,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"timings written to {args.output}")

    if not identical:
        print("error: parallel results differ from the serial path", file=sys.stderr)
        return 1
    if not serving_report["identical_results"]:
        print("error: parallel serving results differ from the serial path", file=sys.stderr)
        return 1
    if not recovery_report["identical_results"]:
        print("error: worker-loss recovery diverged from the serial path", file=sys.stderr)
        return 1
    if not resident_report["identical_results"]:
        print("error: resident-pool results differ from the serial path", file=sys.stderr)
        return 1
    if not daemon_report["identical_results"]:
        print("error: daemon answers differ from the serial path", file=sys.stderr)
        return 1
    if not cold_start_report["identical_results"]:
        print("error: snapshot loads differ from the index that saved them", file=sys.stderr)
        return 1
    if not wal_report["identical_results"]:
        print("error: WAL replay diverged from the live ingest path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
