#!/usr/bin/env python
"""Wall-clock validation of the multicore verification pool.

The ``n_workers > 1`` path of :class:`repro.search.executor.StreamExecutor`
is bit-identity tested on every run (``tests/property/test_execution_invariance``),
but bit-identity says nothing about whether the round-synchronous pool
actually *speeds verification up* on real hardware.  This script measures it:
it runs the same workload serially and with a worker pool, checks the outputs
are identical, prints the wall-clock ratio and writes the raw timings as JSON
(uploaded as a CI artifact by the ``multicore-smoke`` job).

The speedup is *reported, not asserted*: shared CI runners are noisy and the
pool only shards the verification phase, so the job fails only if the two
paths disagree on results or the machine cannot fork workers at all.

Usage::

    PYTHONPATH=src python benchmarks/multicore_smoke.py --output timing.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.datasets.synthetic import synthetic_text_corpus
from repro.search.engine import all_pairs_similarity
from repro.similarity.transforms import tfidf_weighting


def build_workload(n_documents: int, seed: int):
    corpus = synthetic_text_corpus(
        n_documents=n_documents,
        vocabulary_size=4000,
        average_length=40,
        duplicate_fraction=0.35,
        cluster_size=4,
        mutation_rate=0.08,
        seed=seed,
    )
    return tfidf_weighting(corpus.collection)


def run_once(collection, threshold: float, method: str, n_workers: int | None):
    start = time.perf_counter()
    result = all_pairs_similarity(
        collection,
        threshold=threshold,
        measure="cosine",
        method=method,
        seed=0,
        n_workers=n_workers,
    )
    wall = time.perf_counter() - start
    return result, wall


def best_of(collection, threshold, method, n_workers, repeats):
    """Minimum wall clock over ``repeats`` runs (noise-robust on shared runners)."""
    best_result, best_wall = None, float("inf")
    for _ in range(repeats):
        result, wall = run_once(collection, threshold, method, n_workers)
        if wall < best_wall:
            best_result, best_wall = result, wall
    return best_result, best_wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="multicore_timing.json", help="timing JSON path")
    parser.add_argument("--n-documents", type=int, default=3000)
    parser.add_argument("--n-workers", type=int, default=2)
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--method", default="lsh_bayeslsh")
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)

    collection = build_workload(args.n_documents, seed=17)
    print(
        f"workload: {collection.n_vectors} vectors, {collection.n_features} features, "
        f"method={args.method}, threshold={args.threshold}, "
        f"cpu_count={os.cpu_count()}"
    )

    serial_result, serial_wall = best_of(
        collection, args.threshold, args.method, None, args.repeats
    )
    parallel_result, parallel_wall = best_of(
        collection, args.threshold, args.method, args.n_workers, args.repeats
    )

    identical = (
        serial_result.pairs() == parallel_result.pairs()
        and serial_result.n_candidates == parallel_result.n_candidates
        and serial_result.n_pruned == parallel_result.n_pruned
    )
    speedup_total = serial_wall / parallel_wall if parallel_wall > 0 else float("nan")
    serial_verify = serial_result.timings["verification"]
    parallel_verify = parallel_result.timings["verification"]
    speedup_verify = (
        serial_verify / parallel_verify if parallel_verify > 0 else float("nan")
    )

    print(f"serial:   total {serial_wall:.3f}s (verification {serial_verify:.3f}s)")
    print(
        f"parallel: total {parallel_wall:.3f}s (verification {parallel_verify:.3f}s) "
        f"with n_workers={args.n_workers}"
    )
    print(
        f"speedup:  x{speedup_total:.2f} total, x{speedup_verify:.2f} verification, "
        f"results identical: {identical}"
    )

    report = {
        "workload": {
            "n_documents": args.n_documents,
            "n_features": collection.n_features,
            "method": args.method,
            "threshold": args.threshold,
            "repeats": args.repeats,
        },
        "cpu_count": os.cpu_count(),
        "n_workers": args.n_workers,
        "n_output_pairs": len(serial_result),
        "serial": {"total_s": serial_wall, "timings": serial_result.timings},
        "parallel": {"total_s": parallel_wall, "timings": parallel_result.timings},
        "speedup_total": speedup_total,
        "speedup_verification": speedup_verify,
        "identical_results": identical,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"timings written to {args.output}")

    if not identical:
        print("error: parallel results differ from the serial path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
