"""Serving-layer benchmarks: batched queries, ingest scaling and snapshots.

Measures the online-serving workloads the :class:`~repro.search.query.QueryIndex`
subsystem introduces, at a scale comparable to the hot-path benchmarks:

* **batched threshold queries** — ``query_many`` over a 64-query batch
  against a 2000-document corpus (the batch amortises hashing and probe
  work across queries; the contract is bit-identity with the per-query loop,
  which ``tests/property/test_query_serving.py`` enforces);
* **looped threshold queries** — the same 64 queries served one ``query``
  call at a time, so the batch-vs-loop amortisation stays visible in the
  benchmark history;
* **exact vs estimate top-k** — ``top_k_many`` under both ranking modes on
  the same index and batch; the gap is the price of touching the raw
  vectors for exact scores instead of reusing the BayesLSH hash agreements
  (``rank_by="estimate"``; accuracy trade-off documented in
  ``docs/serving.md``);
* **incremental ingest** — ``insert`` of a 200-document batch into an
  existing index (seal a segment: prepare + hash + posting append);
* **ingest scaling** — the acceptance check for the segmented store:
  ``insert`` of a fixed 500-document batch into indices of 10k, 50k and
  100k documents.  Segmented ingest is O(batch), so the three timings
  should be near-flat in the collection size (the monolithic design they
  replace re-concatenated and re-prepared all N rows per insert);
* **snapshot round trip** — ``save`` + ``load`` of a fully built index.

All benchmarks except the ingest-scaling sweep are gated against the
committed baseline ``benchmarks/BENCH_serving.json`` in CI (same 1.3x
regression rule as the hot paths, via ``check_regression.py``); the
ingest-scaling sweep (``test_insert_scaling``) builds 10k–100k document
indices and is excluded from the gate run (``-k "not insert_scaling"``) to
keep the CI job bounded — refresh the baseline with the same filter::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving.py \
        -k "not insert_scaling" --benchmark-only \
        --benchmark-json=bench_serving_raw.json
    python benchmarks/check_regression.py bench_serving_raw.json \
        benchmarks/BENCH_serving.json --update
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import synthetic_text_corpus
from repro.search.query import QueryIndex
from repro.similarity.transforms import tfidf_weighting

_N_DOCUMENTS = 2000
_N_QUERIES = 64
_N_INSERT = 200

_INGEST_SIZES = [10_000, 50_000, 100_000]
_INGEST_BATCH = 500


@pytest.fixture(scope="module")
def serving_collection():
    corpus = synthetic_text_corpus(
        n_documents=_N_DOCUMENTS + _N_INSERT,
        vocabulary_size=4000,
        average_length=40,
        duplicate_fraction=0.5,
        cluster_size=4,
        mutation_rate=0.1,
        seed=53,
    )
    return tfidf_weighting(corpus.collection)


@pytest.fixture(scope="module")
def serving_index(serving_collection):
    index = QueryIndex(
        serving_collection.subset(range(_N_DOCUMENTS)),
        measure="cosine",
        threshold=0.7,
        verification="bayes",
        seed=3,
    )
    # Warm the hash stores so the benchmarks measure serving, not first-call
    # hash materialisation.
    index.query_many(serving_collection.matrix[:2], threshold=0.7)
    return index


@pytest.fixture(scope="module")
def query_batch(serving_collection):
    return serving_collection.matrix[:_N_QUERIES]


def test_query_many_batched(benchmark, serving_index, query_batch):
    results = benchmark(serving_index.query_many, query_batch, threshold=0.7)
    assert len(results) == _N_QUERIES
    assert any(results)


def test_query_looped(benchmark, serving_index, query_batch):
    dense = query_batch.toarray()

    def run():
        return [serving_index.query(dense[i], threshold=0.7) for i in range(len(dense))]

    results = benchmark(run)
    assert len(results) == _N_QUERIES


def test_top_k_many_batched(benchmark, serving_index, query_batch):
    results = benchmark(serving_index.top_k_many, query_batch, 10)
    assert len(results) == _N_QUERIES


def test_top_k_many_estimate(benchmark, serving_index, query_batch):
    """Estimate-ranked top-k: reuses pruning-round posteriors, no exact scores."""
    results = benchmark(
        serving_index.top_k_many, query_batch, 10, rank_by="estimate"
    )
    assert len(results) == _N_QUERIES
    assert any(results)


def test_insert_batch(benchmark, serving_collection):
    fresh_rows = serving_collection.matrix[_N_DOCUMENTS:]

    def make_index():
        index = QueryIndex(
            serving_collection.subset(range(_N_DOCUMENTS)),
            measure="cosine",
            threshold=0.7,
            seed=3,
        )
        return (index,), {}

    # A fresh index per round: insert mutates, so reusing one would measure
    # ever-larger indices.
    rows = benchmark.pedantic(
        lambda index: index.insert(fresh_rows), setup=make_index, rounds=3
    )
    assert len(rows) == _N_INSERT


@pytest.fixture(scope="module")
def ingest_collection():
    corpus = synthetic_text_corpus(
        n_documents=max(_INGEST_SIZES) + _INGEST_BATCH,
        vocabulary_size=4000,
        average_length=40,
        duplicate_fraction=0.5,
        cluster_size=4,
        mutation_rate=0.1,
        seed=59,
    )
    return tfidf_weighting(corpus.collection)


@pytest.fixture(scope="module", params=_INGEST_SIZES, ids=lambda n: f"N{n}")
def ingest_index(request, ingest_collection):
    return QueryIndex(
        ingest_collection.subset(range(request.param)),
        measure="cosine",
        threshold=0.7,
        seed=5,
    )


def test_insert_scaling(benchmark, ingest_index, ingest_collection):
    """Fixed-batch ingest across N ∈ {10k, 50k, 100k}: must be near-flat.

    Each round appends one sealed segment; the index grows by 500 rows per
    round, which is negligible against the collection sizes under test and
    does not change per-insert cost (appends never touch existing segments).
    """
    batch = ingest_collection.matrix[max(_INGEST_SIZES) :]
    rows = benchmark.pedantic(ingest_index.insert, args=(batch,), rounds=5)
    assert len(rows) == _INGEST_BATCH


def test_snapshot_round_trip(benchmark, serving_index, tmp_path):
    def round_trip():
        path = serving_index.save(tmp_path / "bench-snapshot")
        return QueryIndex.load(path)

    loaded = benchmark(round_trip)
    assert loaded.n_indexed == serving_index.n_indexed
