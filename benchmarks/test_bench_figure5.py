"""Benchmark for Figure 5 (appendix): posterior convergence from different priors."""

from repro.experiments import figure5


def test_bench_figure5_posterior_convergence(benchmark):
    result = benchmark.pedantic(lambda: figure5.run(grid_size=2049), rounds=3, iterations=1)
    rows = result.tables["posteriors"].rows
    tv = {(row[0], row[1]): row[4] for row in rows}
    assert tv[("96/128", "x^3")] < tv[("24/32", "x^3")]
