"""Benchmark for Table 3: recall of the AllPairs + BayesLSH variants."""

import pytest

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import recall
from repro.search.pipelines import make_pipeline


@pytest.mark.parametrize("pipeline", ["ap_bayeslsh", "ap_bayeslsh_lite"])
def test_bench_table3_recall(benchmark, rcv1_dataset, pipeline):
    threshold = 0.7
    truth = exact_all_pairs(rcv1_dataset, threshold, "cosine")

    def run():
        engine = make_pipeline(pipeline, rcv1_dataset, measure="cosine", threshold=threshold, seed=1)
        return engine.run(rcv1_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    # the paper reports recalls of ~97% and above for epsilon = 0.03
    assert recall(result, truth) >= 0.90
