"""Benchmark for Table 4: error profile of LSH Approx vs LSH + BayesLSH."""

import pytest

from repro.evaluation.metrics import error_statistics
from repro.search.pipelines import make_pipeline
from repro.similarity.measures import get_measure
from repro.verification.base import exact_similarities_for_pairs


def _exact_map(dataset, result):
    measure = get_measure("cosine")
    prepared = measure.prepare(dataset.collection)
    values = exact_similarities_for_pairs(prepared, measure, result.left, result.right)
    return {(int(i), int(j)): float(v) for i, j, v in zip(result.left, result.right, values)}


@pytest.mark.parametrize("pipeline", ["lsh_approx", "lsh_bayeslsh"])
def test_bench_table4_error_rates(benchmark, rcv1_dataset, pipeline):
    threshold = 0.6

    def run():
        engine = make_pipeline(pipeline, rcv1_dataset, measure="cosine", threshold=threshold, seed=1)
        return engine.run(rcv1_dataset)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = error_statistics(result, exact_similarities=_exact_map(rcv1_dataset, result))
    # neither estimator should be wildly off at this scale
    assert stats.mean_error < 0.06
    assert stats.fraction_above <= 0.2
