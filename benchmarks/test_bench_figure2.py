"""Benchmark for Figure 2: sensitivity of BayesLSH's running time to gamma, delta, epsilon.

The paper's finding is that the running time is essentially flat in epsilon
and gamma but grows when delta is tightened.  The benchmark times the
LSH+BayesLSH pipeline at the extreme values of each parameter.
"""

import pytest

from repro.search.pipelines import make_pipeline

_THRESHOLD = 0.7


def _run(dataset, **kwargs):
    engine = make_pipeline(
        "lsh_bayeslsh", dataset, measure="cosine", threshold=_THRESHOLD, seed=1, **kwargs
    )
    return engine.run(dataset)


@pytest.mark.parametrize("delta", [0.01, 0.09])
def test_bench_figure2_vary_delta(benchmark, wikiwords_dataset, delta):
    result = benchmark.pedantic(
        lambda: _run(wikiwords_dataset, delta=delta, gamma=0.05, epsilon=0.05),
        rounds=2,
        iterations=1,
    )
    assert result.n_candidates > 0


@pytest.mark.parametrize("gamma", [0.01, 0.09])
def test_bench_figure2_vary_gamma(benchmark, wikiwords_dataset, gamma):
    result = benchmark.pedantic(
        lambda: _run(wikiwords_dataset, delta=0.05, gamma=gamma, epsilon=0.05),
        rounds=2,
        iterations=1,
    )
    assert result.n_candidates > 0


@pytest.mark.parametrize("epsilon", [0.01, 0.09])
def test_bench_figure2_vary_epsilon(benchmark, wikiwords_dataset, epsilon):
    result = benchmark.pedantic(
        lambda: _run(wikiwords_dataset, delta=0.05, gamma=0.05, epsilon=epsilon),
        rounds=2,
        iterations=1,
    )
    assert result.n_candidates > 0


def test_figure2_delta_dominates_hash_usage(wikiwords_dataset):
    """Shape check (not timed): tighter delta forces more hash comparisons."""
    tight = _run(wikiwords_dataset, delta=0.01, max_hashes=4096)
    loose = _run(wikiwords_dataset, delta=0.09, max_hashes=4096)
    assert tight.metadata["hash_comparisons"] > loose.metadata["hash_comparisons"]
