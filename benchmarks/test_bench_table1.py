"""Benchmark for Table 1: dataset generation and statistics."""

from repro.experiments import table1


def test_bench_table1_dataset_statistics(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: table1.run(scale=bench_scale, seed=7), rounds=1, iterations=1)
    rows = result.tables["datasets"].rows
    assert len(rows) == 6
    ours = {row[0]: row[6] for row in rows}  # avg len (ours)
    # relative ordering of average lengths mirrors Table 1
    assert ours["wikiwords100k"] > ours["rcv1"] > ours["wikilinks"]
