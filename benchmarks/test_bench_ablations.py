"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the effect of the Section 4.3
optimisations and of the quantised projection storage:

* ``minMatches`` pre-computation versus direct posterior inference per pair;
* the concentration cache versus recomputing Equation 6 for every pair;
* 2-byte quantised Gaussian projections versus full float64 projections.
"""

import numpy as np
import pytest

from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.posteriors import TruncatedCollisionPosterior
from repro.hashing.simhash import SimHashFamily


@pytest.fixture(scope="module")
def match_samples():
    rng = np.random.default_rng(0)
    n = 128
    return [(int(m), n) for m in rng.integers(60, 129, size=2000)]


class TestPruningTestAblation:
    def test_bench_minmatches_table_lookup(self, benchmark, match_samples):
        posterior = TruncatedCollisionPosterior()
        table = MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=32, max_hashes=128)

        def run():
            return sum(table.passes(m, n) for m, n in match_samples)

        benchmark(run)

    def test_bench_direct_posterior_inference(self, benchmark, match_samples):
        posterior = TruncatedCollisionPosterior()

        def run():
            return sum(
                posterior.prob_above_threshold(m, n, 0.7) >= 0.03 for m, n in match_samples
            )

        benchmark(run)


class TestConcentrationCacheAblation:
    def test_bench_with_cache(self, benchmark, match_samples):
        cache = ConcentrationCache(TruncatedCollisionPosterior(), delta=0.05, gamma=0.03)

        def run():
            return sum(cache.is_concentrated(m, n) for m, n in match_samples)

        benchmark(run)

    def test_bench_without_cache(self, benchmark, match_samples):
        posterior = TruncatedCollisionPosterior()

        def run():
            return sum(
                posterior.concentration_probability(m, n, 0.05) >= 0.97
                for m, n in match_samples[:400]
            )

        benchmark(run)


class TestQuantizationAblation:
    @pytest.mark.parametrize("quantize", [True, False], ids=["2-byte", "float64"])
    def test_bench_hashing_with_and_without_quantization(
        self, benchmark, rcv1_dataset, quantize
    ):
        def run():
            family = SimHashFamily(rcv1_dataset.collection, seed=3, quantize=quantize)
            return family.signatures(512).n_hashes

        benchmark.pedantic(run, rounds=2, iterations=1)
