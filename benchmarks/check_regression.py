#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage
-----
Record / refresh the committed baseline from a raw pytest-benchmark dump::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_hotpaths.py \
        --benchmark-only --benchmark-json=bench_raw.json
    python benchmarks/check_regression.py bench_raw.json \
        benchmarks/BENCH_hotpaths.json --update

Gate a fresh run against the baseline (exits non-zero on regression)::

    python benchmarks/check_regression.py bench_raw.json \
        benchmarks/BENCH_hotpaths.json --max-ratio 1.3

The baseline stores the per-benchmark minimum over rounds (the most
noise-robust statistic on shared runners).  A benchmark regresses when
``fresh_min > max_ratio * baseline_min``.  Benchmarks that are *new* in the
fresh run are reported but never fail the gate (adding benchmarks does not
require a lock-step baseline update); a benchmark present in the baseline
but **missing from the fresh run** fails the gate with exit code 3 — a rename
or removal must be accompanied by a ``--update`` so it cannot silently drop
out of regression coverage.  ``--update`` rewrites the baseline from the
fresh run, *prunes* (and reports) baseline keys the fresh run no longer
contains — so renames cannot leave stale keys behind that would trip the
exit-3 check forever after — and symmetrically reports keys the baseline
*gains*, so a suite growing new benchmarks (daemon keys landing in
``BENCH_serving.json``, say) is a visible, deliberate act too.  Run ``--update`` with a fresh JSON produced
from the same benchmark file the baseline covers (one baseline per suite:
``BENCH_hotpaths.json`` for ``test_bench_hotpaths.py``,
``BENCH_serving.json`` for the gated subset of ``test_bench_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import sys


def _extract(raw: dict) -> dict[str, float]:
    """Map benchmark name -> min seconds from a pytest-benchmark JSON dump."""
    return {
        bench["name"]: float(bench["stats"]["min"]) for bench in raw.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail when fresh_min exceeds max_ratio * baseline_min (default 1.3)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the fresh run instead of comparing",
    )
    args = parser.parse_args(argv)

    with open(args.fresh) as handle:
        fresh = _extract(json.load(handle))
    if not fresh:
        print("error: fresh run contains no benchmarks", file=sys.stderr)
        return 2

    if args.update:
        try:
            with open(args.baseline) as handle:
                previous = json.load(handle).get("benchmarks", {})
        except (FileNotFoundError, json.JSONDecodeError):
            previous = {}
        # The fresh run *is* the new baseline; keys that existed before but
        # are absent from the fresh run are pruned (and reported, so a rename
        # or removal is a visible, deliberate act rather than silent drift —
        # the compare mode treats missing baseline keys as a hard failure,
        # which is why stale keys must never linger).
        pruned = sorted(set(previous) - set(fresh))
        for name in pruned:
            print(f"PRUNED    {name}: removed from the baseline (absent from fresh run)")
        # Mirror the pruned report for keys the baseline *gains*, so growing
        # a suite (e.g. BENCH_serving.json picking up the daemon benchmarks)
        # is just as visible in the --update output as shrinking one.
        added = sorted(set(fresh) - set(previous))
        for name in added:
            print(f"ADDED     {name}: new baseline key ({fresh[name] * 1000:.2f} ms)")
        with open(args.baseline, "w") as handle:
            json.dump(
                {"unit": "seconds (min over rounds)", "benchmarks": fresh},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        summary = f"baseline updated with {len(fresh)} benchmarks"
        details = []
        if pruned:
            details.append(f"{len(pruned)} stale key(s) pruned")
        if added:
            details.append(f"{len(added)} key(s) added")
        if details:
            summary += f" ({', '.join(details)})"
        print(f"{summary} -> {args.baseline}")
        return 0

    with open(args.baseline) as handle:
        baseline = json.load(handle)["benchmarks"]

    failures = []
    missing = []
    for name in sorted(set(fresh) | set(baseline)):
        if name not in baseline:
            print(f"NEW       {name}: {fresh[name] * 1000:.2f} ms (no baseline)")
            continue
        if name not in fresh:
            print(f"MISSING   {name}: in the baseline but absent from the fresh run")
            missing.append(name)
            continue
        ratio = fresh[name] / baseline[name]
        status = "OK"
        if ratio > args.max_ratio:
            status = "REGRESSED"
            failures.append((name, ratio))
        print(
            f"{status:9s} {name}: {fresh[name] * 1000:.2f} ms "
            f"vs baseline {baseline[name] * 1000:.2f} ms (x{ratio:.2f})"
        )

    # Report every failing condition before exiting, so a rename cannot mask
    # a simultaneous regression (an --update issued to fix the rename would
    # silently absorb the slow value into the baseline otherwise).
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond x{args.max_ratio}:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name} (x{ratio:.2f})", file=sys.stderr)
    if missing:
        print(
            f"\n{len(missing)} baseline benchmark(s) missing from the fresh run:",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        print(
            "a renamed or removed benchmark must refresh the baseline: rerun with "
            "--update after confirming the change is intentional"
            + (" and after fixing the regressions above" if failures else ""),
            file=sys.stderr,
        )
    if failures:
        return 1
    if missing:
        return 3
    print(f"\nall benchmarks within x{args.max_ratio} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
