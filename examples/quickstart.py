"""Quickstart: all-pairs similarity search in a few lines.

Builds a small synthetic TF-IDF corpus, finds every pair of documents with
cosine similarity above 0.7 using the default pipeline (AllPairs candidate
generation + BayesLSH verification), and prints the strongest matches
together with some run statistics.

Run with:  python examples/quickstart.py
"""

from repro import all_pairs_similarity
from repro.datasets import synthetic_text_corpus
from repro.similarity import tfidf_weighting


def main() -> None:
    # 1. Get some data.  Any of: numpy array, scipy sparse matrix, list of
    #    {feature: weight} dicts, list of token sets, or a repro Dataset.
    corpus = synthetic_text_corpus(
        n_documents=800,
        vocabulary_size=4000,
        average_length=60,
        duplicate_fraction=0.3,
        seed=42,
    )
    vectors = tfidf_weighting(corpus.collection)
    print(f"corpus: {vectors.n_vectors} documents, {vectors.nnz} non-zeros")

    # 2. One call: every pair with cosine similarity above the threshold.
    result = all_pairs_similarity(vectors, threshold=0.7, measure="cosine", seed=0)

    # 3. Inspect the result.
    print(f"pipeline           : {result.method}")
    print(f"candidate pairs    : {result.n_candidates}")
    print(f"pruned by BayesLSH : {result.n_pruned}")
    print(f"reported pairs     : {len(result)}")
    print(f"total time         : {result.total_time:.2f}s")
    print()
    print("strongest matches (document i, document j, estimated similarity):")
    for pair in result.top(10):
        print(f"  doc {pair.i:4d}  ~  doc {pair.j:4d}   similarity {pair.similarity:.3f}")


if __name__ == "__main__":
    main()
