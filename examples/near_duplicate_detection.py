"""Near-duplicate detection on a text corpus (the paper's motivating workload).

A corpus with planted near-duplicate clusters is searched at a high cosine
threshold with two pipelines — plain AllPairs (exact) and
AllPairs + BayesLSH-Lite — to show that the Bayesian pruning recovers the
same duplicate groups while examining far fewer exact similarities.  The
duplicate pairs are then grouped into connected components ("duplicate
clusters"), which is how near-duplicate detection is used for web crawling
and index deduplication.

Run with:  python examples/near_duplicate_detection.py
"""

from collections import defaultdict

from repro.datasets import synthetic_text_corpus
from repro.search import make_pipeline
from repro.similarity import tfidf_weighting

THRESHOLD = 0.8


def connected_components(pairs):
    """Group pairs into duplicate clusters with a tiny union-find."""
    parent: dict[int, int] = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j, _ in pairs:
        root_i, root_j = find(i), find(j)
        if root_i != root_j:
            parent[root_i] = root_j
    clusters = defaultdict(list)
    for node in parent:
        clusters[find(node)].append(node)
    return [sorted(members) for members in clusters.values() if len(members) > 1]


def main() -> None:
    corpus = synthetic_text_corpus(
        n_documents=1000,
        vocabulary_size=5000,
        average_length=70,
        duplicate_fraction=0.25,
        cluster_size=4,
        mutation_rate=0.08,
        seed=7,
    )
    vectors = tfidf_weighting(corpus.collection)
    print(f"corpus: {vectors.n_vectors} documents, threshold {THRESHOLD} (cosine)\n")

    results = {}
    for pipeline_name in ("allpairs", "ap_bayeslsh_lite"):
        engine = make_pipeline(
            pipeline_name, vectors, measure="cosine", threshold=THRESHOLD, seed=1
        )
        result = engine.run(vectors)
        results[pipeline_name] = result
        clusters = connected_components(result.pairs())
        print(f"[{pipeline_name}]")
        print(f"  candidate pairs          : {result.n_candidates}")
        print(f"  exact similarity checks  : {result.metadata['exact_computations']}")
        print(f"  duplicate pairs reported : {len(result)}")
        print(f"  duplicate clusters       : {len(clusters)}")
        print(f"  total time               : {result.total_time:.2f}s\n")

    exact_pairs = results["allpairs"].pair_set()
    bayes_pairs = results["ap_bayeslsh_lite"].pair_set()
    agreement = len(exact_pairs & bayes_pairs) / max(1, len(exact_pairs))
    print(f"BayesLSH-Lite recovered {100 * agreement:.1f}% of the exact duplicate pairs")
    planted = (corpus.metadata["cluster_labels"] >= 0).sum()
    print(f"(the corpus contains {planted} documents planted in near-duplicate clusters)")


if __name__ == "__main__":
    main()
