"""Tuning BayesLSH's quality knobs (the paper's Figure 2 / Table 5 story).

BayesLSH exposes exactly three parameters, each tied to an output guarantee:

* ``epsilon`` — recall: the per-pair false-negative probability bound;
* ``delta``, ``gamma`` — accuracy: estimates are within ``delta`` of the truth
  with probability at least ``1 - gamma``.

This example sweeps each parameter on a fixed workload and reports the metric
it controls, plus the running time — reproducing, at example scale, the
paper's finding that epsilon and gamma barely affect speed while delta is the
knob that buys accuracy with time.

Run with:  python examples/parameter_tuning.py
"""

from repro.datasets import load_dataset
from repro.evaluation import error_statistics, exact_all_pairs, recall
from repro.search import make_pipeline

THRESHOLD = 0.7
VALUES = (0.01, 0.05, 0.09)


def run_with(dataset, **bayes_kwargs):
    engine = make_pipeline(
        "lsh_bayeslsh", dataset, measure="cosine", threshold=THRESHOLD, seed=1, **bayes_kwargs
    )
    return engine.run(dataset)


def main() -> None:
    dataset = load_dataset("wikiwords100k", scale=0.4, seed=11)
    truth = exact_all_pairs(dataset, THRESHOLD, "cosine")
    print(
        f"dataset: {dataset.name} stand-in, {dataset.n_vectors} vectors; "
        f"{len(truth)} true pairs above t={THRESHOLD}\n"
    )

    print("varying epsilon (recall knob), delta = gamma = 0.05")
    print(f"{'epsilon':>9} {'recall':>8} {'time (s)':>9}")
    for epsilon in VALUES:
        result = run_with(dataset, epsilon=epsilon)
        print(f"{epsilon:9.2f} {recall(result, truth):8.3f} {result.total_time:9.2f}")

    print("\nvarying delta (estimate-accuracy knob), epsilon = gamma = 0.05")
    print(f"{'delta':>9} {'mean err':>9} {'time (s)':>9}")
    for delta in VALUES:
        result = run_with(dataset, delta=delta)
        stats = error_statistics(result, truth)
        print(f"{delta:9.2f} {stats.mean_error:9.4f} {result.total_time:9.2f}")

    print("\nvarying gamma (estimate-confidence knob), epsilon = delta = 0.05")
    print(f"{'gamma':>9} {'%err>0.05':>10} {'time (s)':>9}")
    for gamma in VALUES:
        result = run_with(dataset, gamma=gamma)
        stats = error_statistics(result, truth)
        print(f"{gamma:9.2f} {stats.percent_above:10.1f} {result.total_time:9.2f}")

    print(
        "\nExpected shape (matches the paper): recall tracks 1 - epsilon, mean error tracks "
        "delta, the error fraction stays below gamma, and only delta noticeably moves the "
        "running time."
    )


if __name__ == "__main__":
    main()
