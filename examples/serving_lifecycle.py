"""Serving lifecycle: build -> snapshot -> load -> insert -> delete -> compact.

Walks a :class:`~repro.search.query.QueryIndex` through every stage of its
operational life (see ``docs/serving.md`` for the full guide):

1. **build** an index over a TF-IDF corpus;
2. **snapshot** it to a versioned ``.npz`` file and **load** it back —
   the loaded index answers bit-identically to the saved one;
3. **insert** a fresh batch (sealed as a new segment, O(batch));
4. **delete** a few rows (tombstoned, filtered immediately);
5. **compact** on save — tombstones dropped, segments merged — and reload;
6. serve a **batched top-k** query against the compacted index, in both the
   exact and the estimate-ranked mode;
7. attach a **resident worker pool** (``start_pool``) so repeated batched
   calls reuse warm workers instead of forking per call, verify the pooled
   answers stay bit-identical, and tear it down deterministically with
   ``close()`` — the index is a context manager, so ``with`` blocks get the
   same teardown for free;
8. attach a **write-ahead log**, checkpoint, mutate, then **crash and
   recover**: loading the checkpoint with ``wal=`` replays the logged tail
   and the recovered index answers bit-identically to the one that "died".

Runs end-to-end in a couple of seconds and asserts its own invariants, so
CI uses it as a smoke test.  Run with:  python examples/serving_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro import QueryIndex
from repro.datasets import synthetic_text_corpus
from repro.serving import WriteAheadLog
from repro.similarity import tfidf_weighting


def main() -> None:
    # 1. Build.  The corpus becomes segment 0 of the index's segmented store.
    corpus = synthetic_text_corpus(
        n_documents=1200,
        vocabulary_size=4000,
        average_length=50,
        duplicate_fraction=0.4,
        seed=7,
    )
    vectors = tfidf_weighting(corpus.collection)
    index = QueryIndex(
        vectors.subset(range(1000)), measure="cosine", threshold=0.7, seed=0
    )
    print(f"built   : {index.n_indexed} docs, {index.n_signatures} bands, "
          f"{index.n_segments} segment(s)")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Snapshot and load.  The archive round-trips the hash family's
        #    RNG position, so the loaded index is bit-identical — including
        #    hashes it will draw in the future.
        path = index.save(Path(tmp) / "corpus-index")
        index = QueryIndex.load(path)
        print(f"loaded  : {path.name} ({path.stat().st_size / 1024:.0f} KiB)")

        # 3. Insert: each batch is sealed as a new segment in O(batch) —
        #    nothing existing is re-hashed or re-concatenated.
        new_rows = index.insert(vectors.matrix[1000:1200])
        assert index.n_segments == 2
        print(f"inserted: rows {new_rows[0]}..{new_rows[-1]}, "
              f"now {index.n_segments} segments")

        # 4. Delete: tombstoned rows vanish from results immediately; the
        #    postings clean themselves up lazily via the staleness budget.
        index.delete(range(0, 50))
        probe = vectors.matrix[0]
        assert all(pair.j != 0 for pair in index.query(probe, threshold=0.5))
        print(f"deleted : {index.n_deleted} rows tombstoned "
              f"({index.n_stale_postings} stale postings)")

        # 5. Compact on save: the snapshot merges the segments and drops the
        #    tombstoned rows; survivors are renumbered but keep their ids.
        before = {
            (index.ids[pair.j], round(pair.similarity, 12))
            for pair in index.query(vectors.matrix[100], threshold=0.5)
        }
        compact_path = index.save(Path(tmp) / "corpus-index-compact", compact=True)
        compacted = QueryIndex.load(compact_path)
        after = {
            (compacted.ids[pair.j], round(pair.similarity, 12))
            for pair in compacted.query(vectors.matrix[100], threshold=0.5)
        }
        assert compacted.n_indexed == index.n_alive
        assert compacted.n_deleted == 0 and compacted.n_segments == 1
        assert before == after, "compaction must preserve (id, similarity) answers"
        print(f"compact : {index.n_indexed} -> {compacted.n_indexed} rows, "
              f"{compact_path.stat().st_size / 1024:.0f} KiB")

        # 6. Batched top-k, exact vs estimate-ranked.  The estimate mode
        #    ranks by the BayesLSH posterior estimates computed during
        #    pruning — no exact similarity is evaluated (see docs/serving.md
        #    for the measured latency/accuracy trade-off).
        queries = vectors.matrix[100:108]
        exact = compacted.top_k_many(queries, k=5)
        estimated = compacted.top_k_many(queries, k=5, rank_by="estimate")
        assert len(exact) == len(estimated) == 8
        print("top-k   : query  exact-best           estimate-best")
        for q, (hits_e, hits_m) in enumerate(zip(exact, estimated)):
            best_e = f"id {compacted.ids[hits_e[0].j]:4d} @ {hits_e[0].similarity:.3f}" if hits_e else "-"
            best_m = f"id {compacted.ids[hits_m[0].j]:4d} @ {hits_m[0].similarity:.3f}" if hits_m else "-"
            print(f"          {q:5d}  {best_e:20s} {best_m}")

        # 7. Resident pool: one fork, many batches.  Batched calls with
        #    n_workers unset route to the attached pool; each batch ships
        #    only its query-state delta to the warm workers.  close() (or
        #    leaving a `with` block) shuts the pool down deterministically —
        #    a long-lived process must never rely on GC for shared memory.
        compacted.start_pool(2)
        pooled = compacted.top_k_many(queries, k=5)
        stats = compacted.pool_stats()
        compacted.close()
        assert pooled == exact, "resident pool must stay bit-identical"
        assert compacted.pool_stats() is None
        print(f"resident: {stats['live_workers']} workers served "
              f"{stats['batches_served']} batch(es), closed cleanly")

        # 8. Durability: with a write-ahead log attached, every mutation is
        #    logged (under the update lock, before it applies), and save()
        #    doubles as a checkpoint — it seals the log's active segment and
        #    stamps the snapshot with the segment replay starts from.  A
        #    crash after acknowledged mutations therefore loses nothing:
        #    loading the checkpoint with wal= replays the logged tail.
        wal_dir = Path(tmp) / "wal"
        compacted.attach_wal(WriteAheadLog(wal_dir, fsync="batch"))
        checkpoint = compacted.save(Path(tmp) / "corpus-index-checkpoint")
        compacted.insert(vectors.matrix[200:260])   # logged, then applied
        compacted.delete(range(0, 10))              # likewise
        live_answers = compacted.top_k_many(queries, k=5)

        # The "crash": forget the live index entirely — everything since
        # the checkpoint exists only in the log.  Recovery replays it
        # through the ordinary insert/delete code paths, so the recovered
        # index matches the lost one bit for bit, including its RNG future.
        recovered = QueryIndex.load(checkpoint, wal=WriteAheadLog(wal_dir))
        replay = recovered.replay_stats()
        assert replay["replayed_records"] == 2
        assert recovered.n_indexed == compacted.n_indexed
        assert recovered.top_k_many(queries, k=5) == live_answers, (
            "replay must reproduce the crashed index's answers"
        )
        recovered.wal.close()
        compacted.wal.close()
        print(f"durable : crash after checkpoint replayed "
              f"{replay['replayed_records']} record(s) "
              f"({replay['replayed_inserts']} insert, "
              f"{replay['replayed_deletes']} delete) — answers identical")

    print("serving lifecycle OK")


if __name__ == "__main__":
    main()
