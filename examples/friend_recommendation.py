"""Friend recommendation / link prediction on a social graph.

The paper motivates all-pairs similarity search on graph datasets (Orkut,
Twitter, WikiLinks) with link prediction and friendship recommendation:
users whose neighbourhood vectors are similar are likely to become friends.

This example builds a community-structured synthetic graph, finds all pairs
of users with similar follow-vectors using LSH + BayesLSH (the variant the
paper found fastest on the Twitter-like workload), and recommends to each
user the people their most-similar users follow but they do not.

Run with:  python examples/friend_recommendation.py
"""

from collections import Counter, defaultdict

from repro.datasets import synthetic_graph
from repro.search import make_pipeline
from repro.similarity import tfidf_weighting

THRESHOLD = 0.5
TOP_USERS = 5
RECOMMENDATIONS_PER_USER = 3


def main() -> None:
    graph = synthetic_graph(
        n_nodes=1200,
        average_degree=25,
        n_communities=30,
        within_community_fraction=0.85,
        seed=3,
    )
    adjacency = graph.collection  # row i = the users that user i follows
    weighted = tfidf_weighting(adjacency)
    print(
        f"graph: {adjacency.n_vectors} users, average out-degree "
        f"{adjacency.average_length:.1f}, cosine threshold {THRESHOLD}\n"
    )

    engine = make_pipeline("lsh_bayeslsh", weighted, measure="cosine", threshold=THRESHOLD, seed=0)
    result = engine.run(weighted)
    print(f"similar user pairs found : {len(result)}")
    print(f"candidate pairs examined : {result.n_candidates}")
    print(f"total time               : {result.total_time:.2f}s\n")

    # Index the similar-user lists.
    neighbours = defaultdict(list)
    for pair in result:
        neighbours[pair.i].append((pair.j, pair.similarity))
        neighbours[pair.j].append((pair.i, pair.similarity))

    # Recommend: what the similar users follow that this user does not.
    most_connected = sorted(neighbours, key=lambda user: len(neighbours[user]), reverse=True)
    communities = graph.metadata["communities"]
    print(f"recommendations for the {TOP_USERS} users with most similar peers:")
    for user in most_connected[:TOP_USERS]:
        follows = set(adjacency.row_features(user).tolist())
        votes = Counter()
        for peer, similarity in neighbours[user]:
            for target in adjacency.row_features(peer):
                target = int(target)
                if target != user and target not in follows:
                    votes[target] += similarity
        suggestions = [target for target, _ in votes.most_common(RECOMMENDATIONS_PER_USER)]
        same_community = sum(communities[s] == communities[user] for s in suggestions)
        print(
            f"  user {user:4d} (community {communities[user]:2d}): recommend {suggestions} "
            f"({same_community}/{len(suggestions)} from the same community)"
        )


if __name__ == "__main__":
    main()
