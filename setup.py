"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works in offline environments whose pip cannot
build editable wheels (no ``wheel`` package available) and has to fall back
to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
