#!/usr/bin/env python
"""Documentation gate for the public serving/search API.

Walks the ASTs of the packages named on the command line (default:
``src/repro/serving`` and ``src/repro/search``) and fails — exit code 1,
one line per offender — when any of the following lacks a docstring:

* a module,
* a public class (name not starting with ``_``),
* a public function or public method of a public class.

Exempt from the gate: dunder methods (including ``__init__`` — constructor
parameters are documented in the class docstring, per the repo's docstring
style) and protocol/overload stubs whose whole body is ``...``/``pass``.

The CI ``docs-check`` job runs this script; see ``docs/architecture.md`` for
the documentation system this gate protects.  Run locally with::

    python tools/docs_check.py            # default packages
    python tools/docs_check.py src/repro  # widen the net
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PACKAGES = ("src/repro/serving", "src/repro/search")

#: dunder methods whose meaning is fixed by the language; only __init__ would
#: add signal, and its parameters belong in the class docstring instead.
_EXEMPT_DUNDERS_PREFIX = "__"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for overload/protocol stubs whose whole body is ``...`` or ``pass``."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in node.body
    )


def _missing_in_class(node: ast.ClassDef, path: Path) -> list[str]:
    problems = []
    for child in node.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if child.name.startswith(_EXEMPT_DUNDERS_PREFIX):
            continue
        if not _is_public(child.name) or _is_stub(child):
            continue
        if ast.get_docstring(child) is None:
            problems.append(
                f"{path}:{child.lineno}: public method "
                f"{node.name}.{child.name} lacks a docstring"
            )
    return problems


def check_file(path: Path) -> list[str]:
    """All documentation problems in one Python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: module lacks a docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: public class {node.name} lacks a docstring"
                )
            problems.extend(_missing_in_class(node, path))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and not _is_stub(node):
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{path}:{node.lineno}: public function {node.name} "
                        "lacks a docstring"
                    )
    return problems


def main(argv: list[str]) -> int:
    """Check every ``.py`` file under the given package roots."""
    roots = [Path(arg) for arg in argv] or [Path(p) for p in DEFAULT_PACKAGES]
    problems: list[str] = []
    n_files = 0
    for root in roots:
        if not root.exists():
            print(f"docs-check: no such path {root}", file=sys.stderr)
            return 2
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            n_files += 1
            problems.extend(check_file(path))
    if problems:
        print("\n".join(problems))
        print(f"\ndocs-check: {len(problems)} problem(s) in {n_files} file(s)")
        return 1
    print(f"docs-check: OK ({n_files} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
